//! Live traffic perturbations as a delta-overlay on the distance oracle.
//!
//! The paper's road network is *dynamic*: edge travel times are refreshed
//! from live speeds as the day unfolds. Rebuilding a per-hour-slot index
//! (hub labels, contraction hierarchies) on every refresh would be absurdly
//! expensive, so perturbations are instead expressed as a [`TrafficOverlay`]
//! — a sparse map `EdgeId → multiplier ≥ 1` layered on top of the static
//! `β(e, t)` weights. The effective weight of a perturbed edge is
//! `β(e, t) × multiplier(e)`.
//!
//! [`ShortestPathEngine`](crate::ShortestPathEngine) answers queries under an
//! active overlay with a **bounded overlay search**: the unperturbed index
//! answer `d₀` is a lower bound on the perturbed distance, and
//! `d₀ × max_multiplier` is an upper bound (the unperturbed-optimal path is
//! still available, just slower), so an exact Dijkstra on the overlaid
//! weights can prune every label above that bound. The indexes themselves are
//! never rebuilt; a generation counter on the engine invalidates memoised
//! overlay answers when the overlay changes.
//!
//! Multipliers are restricted to `≥ 1` (incidents, rain and localized
//! slowdowns make roads *slower*); this is what makes the index answer a
//! usable lower bound. Overlays never disconnect the graph — a perturbed
//! edge is slow, not closed.

use crate::dijkstra::{PathResult, SearchSpace, NO_EDGE};
use crate::graph::RoadNetwork;
use crate::ids::{EdgeId, NodeId};
use crate::timeofday::{Duration, TimePoint};
use std::collections::HashMap;

/// A sparse set of travel-time multipliers layered over a road network.
///
/// Cheap to clone when empty and small; built once per change of the active
/// disruption set, shared behind the engine's overlay slot thereafter.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficOverlay {
    /// Only perturbed edges are stored; absent edges have multiplier `1`.
    multipliers: HashMap<EdgeId, f64>,
    max_multiplier: f64,
}

impl TrafficOverlay {
    /// Creates an empty overlay (every edge at its baseline weight).
    pub fn new() -> Self {
        TrafficOverlay { multipliers: HashMap::new(), max_multiplier: 1.0 }
    }

    /// Slows `edge` down by `factor`. Overlapping perturbations combine by
    /// taking the worst (largest) factor.
    ///
    /// # Panics
    /// Panics if `factor` is not finite or is below `1.0` — overlays model
    /// slowdowns only (see the module docs for why).
    pub fn slow_edge(&mut self, edge: EdgeId, factor: f64) {
        assert!(factor.is_finite() && factor >= 1.0, "overlay factor must be ≥ 1, got {factor}");
        if factor == 1.0 {
            return;
        }
        let entry = self.multipliers.entry(edge).or_insert(1.0);
        *entry = entry.max(factor);
        self.max_multiplier = self.max_multiplier.max(factor);
    }

    /// The travel-time multiplier of `edge` (`1.0` when unperturbed).
    #[inline]
    pub fn multiplier(&self, edge: EdgeId) -> f64 {
        self.multipliers.get(&edge).copied().unwrap_or(1.0)
    }

    /// True when no edge is perturbed.
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }

    /// Number of perturbed edges.
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// The largest multiplier in the overlay (`1.0` when empty). Used to turn
    /// an unperturbed index answer into an upper bound for the overlay search.
    #[inline]
    pub fn max_multiplier(&self) -> f64 {
        self.max_multiplier
    }

    /// The perturbed weight of `edge` at time `t`:
    /// `β(e, t) × multiplier(e)`, in seconds.
    #[inline]
    pub fn edge_secs(&self, network: &RoadNetwork, edge: EdgeId, t: TimePoint) -> f64 {
        network.travel_time(edge, t).as_secs_f64() * self.multiplier(edge)
    }

    /// Converts an unperturbed distance `d₀` (seconds) into a safe pruning
    /// bound for the overlay search. The margin absorbs floating-point noise
    /// in the `≤ d₀ × max_multiplier` upper-bound argument.
    #[inline]
    pub(crate) fn search_bound(&self, baseline_secs: f64) -> f64 {
        baseline_secs * self.max_multiplier * (1.0 + 1e-9) + 1e-6
    }
}

/// Relaxes `node`'s out-edges under the overlaid weight, pruning labels
/// above `bound` (`f64::INFINITY` disables pruning).
#[inline]
fn relax_overlaid(
    network: &RoadNetwork,
    overlay: &TrafficOverlay,
    t: TimePoint,
    space: &mut SearchSpace,
    node: NodeId,
    base: f64,
    bound: f64,
) {
    for (eid, edge) in network.out_edges(node) {
        let to = edge.to.index();
        if space.is_settled(to) {
            continue;
        }
        let next = base + overlay.edge_secs(network, eid, t);
        if next < space.dist(to) && next <= bound {
            space.update(to, next, next, eid.0);
            space.push(next, edge.to);
        }
    }
}

/// Exact `SP(u, v, t)` on the overlaid weights, pruned at `bound` seconds
/// when given (the caller guarantees the true perturbed distance does not
/// exceed the bound; see [`TrafficOverlay::search_bound`]).
pub fn shortest_travel_time_overlaid_in(
    network: &RoadNetwork,
    overlay: &TrafficOverlay,
    source: NodeId,
    target: NodeId,
    t: TimePoint,
    bound_secs: Option<f64>,
    space: &mut SearchSpace,
) -> Option<Duration> {
    if source == target {
        return Some(Duration::ZERO);
    }
    let bound = bound_secs.unwrap_or(f64::INFINITY);
    space.begin(network.node_count());
    space.update(source.index(), 0.0, 0.0, NO_EDGE);
    space.push(0.0, source);
    while let Some((cost, node)) = space.pop() {
        let i = node.index();
        if space.is_settled(i) || cost > space.dist(i) {
            continue;
        }
        space.settle(i);
        if node == target {
            return Some(Duration::from_secs_f64(cost));
        }
        relax_overlaid(network, overlay, t, space, node, cost, bound);
    }
    None
}

/// [`shortest_travel_time_overlaid_in`] for several targets in one bounded
/// Dijkstra run. Targets that are unreachable (or lie beyond the bound —
/// which the caller only allows for unreachable targets) map to `None`.
pub fn one_to_many_overlaid_in(
    network: &RoadNetwork,
    overlay: &TrafficOverlay,
    source: NodeId,
    targets: &[NodeId],
    t: TimePoint,
    bound_secs: Option<f64>,
    space: &mut SearchSpace,
) -> Vec<Option<Duration>> {
    let bound = bound_secs.unwrap_or(f64::INFINITY);
    space.begin(network.node_count());
    let mut remaining = 0usize;
    for &target in targets {
        if space.mark_target(target.index()) {
            remaining += 1;
        }
    }
    space.update(source.index(), 0.0, 0.0, NO_EDGE);
    space.push(0.0, source);
    while remaining > 0 {
        let Some((cost, node)) = space.pop() else { break };
        let i = node.index();
        if space.is_settled(i) || cost > space.dist(i) {
            continue;
        }
        space.settle(i);
        if space.take_target(i) {
            remaining -= 1;
        }
        if remaining > 0 {
            relax_overlaid(network, overlay, t, space, node, cost, bound);
        }
    }
    targets
        .iter()
        .map(|&target| {
            let i = target.index();
            if source == target {
                Some(Duration::ZERO)
            } else if space.is_settled(i) {
                Some(Duration::from_secs_f64(space.dist(i)))
            } else {
                None
            }
        })
        .collect()
}

/// Full shortest path (node sequence, travel time, length) on the overlaid
/// weights.
pub fn shortest_path_overlaid_in(
    network: &RoadNetwork,
    overlay: &TrafficOverlay,
    source: NodeId,
    target: NodeId,
    t: TimePoint,
    space: &mut SearchSpace,
) -> Option<PathResult> {
    space.begin(network.node_count());
    space.update(source.index(), 0.0, 0.0, NO_EDGE);
    space.push(0.0, source);
    let mut reached = source == target;
    while let Some((cost, node)) = space.pop() {
        let i = node.index();
        if space.is_settled(i) || cost > space.dist(i) {
            continue;
        }
        space.settle(i);
        if node == target {
            reached = true;
            break;
        }
        relax_overlaid(network, overlay, t, space, node, cost, f64::INFINITY);
    }
    if !reached {
        return None;
    }

    let mut nodes = vec![target];
    let mut length_m = 0.0;
    let mut cursor = target;
    while cursor != source {
        let eid = space.parent_edge(cursor.index()).expect("reached node must have a parent edge");
        let edge = network.edge(eid);
        length_m += edge.length_m;
        cursor = edge.from;
        nodes.push(cursor);
    }
    nodes.reverse();

    Some(PathResult {
        travel_time: Duration::from_secs_f64(space.dist(target.index())),
        length_m,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::{CongestionProfile, RoadClass};
    use crate::dijkstra;
    use crate::generators::GridCityBuilder;
    use crate::geo::GeoPoint;
    use crate::graph::RoadNetworkBuilder;

    fn overlay_on(net: &RoadNetwork, factor: f64, every: usize) -> TrafficOverlay {
        let mut overlay = TrafficOverlay::new();
        for eid in net.edge_ids().step_by(every) {
            overlay.slow_edge(eid, factor);
        }
        overlay
    }

    /// A reference network whose edges are physically lengthened by the
    /// overlay factors, so plain Dijkstra on it *is* the perturbed oracle.
    fn rebuilt_with_overlay(net: &RoadNetwork, overlay: &TrafficOverlay) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new().congestion(net.congestion().clone());
        for node in net.node_ids() {
            b.add_node(net.position(node));
        }
        for eid in net.edge_ids() {
            let e = net.edge(eid);
            b.add_edge(e.from, e.to, e.length_m * overlay.multiplier(eid), e.class);
        }
        b.build()
    }

    #[test]
    fn empty_overlay_matches_plain_dijkstra() {
        let net = GridCityBuilder::new(5, 5).build();
        let overlay = TrafficOverlay::new();
        let t = TimePoint::from_hms(12, 0, 0);
        let mut space = SearchSpace::new();
        for s in [0u32, 7, 13] {
            for g in [3u32, 18, 24] {
                assert_eq!(
                    shortest_travel_time_overlaid_in(
                        &net,
                        &overlay,
                        NodeId(s),
                        NodeId(g),
                        t,
                        None,
                        &mut space
                    ),
                    dijkstra::shortest_travel_time(&net, NodeId(s), NodeId(g), t)
                );
            }
        }
    }

    #[test]
    fn overlaid_times_match_a_rebuilt_network() {
        let net = GridCityBuilder::new(6, 6).congestion(CongestionProfile::metropolitan()).build();
        let overlay = overlay_on(&net, 2.5, 3);
        let reference = rebuilt_with_overlay(&net, &overlay);
        let t = TimePoint::from_hms(19, 30, 0);
        let mut space = SearchSpace::new();
        for s in (0..net.node_count() as u32).step_by(5) {
            for g in (1..net.node_count() as u32).step_by(7) {
                let got = shortest_travel_time_overlaid_in(
                    &net,
                    &overlay,
                    NodeId(s),
                    NodeId(g),
                    t,
                    None,
                    &mut space,
                );
                let expected = dijkstra::shortest_travel_time(&reference, NodeId(s), NodeId(g), t);
                match (got, expected) {
                    (Some(a), Some(b)) => {
                        assert!(
                            (a.as_secs_f64() - b.as_secs_f64()).abs() < 1e-6,
                            "{s}->{g}: {a:?} vs {b:?}"
                        );
                    }
                    (a, b) => assert_eq!(a, b, "{s}->{g}"),
                }
            }
        }
    }

    #[test]
    fn bounded_search_is_exact_when_bound_is_valid() {
        let net = GridCityBuilder::new(6, 6).build();
        let overlay = overlay_on(&net, 3.0, 2);
        let t = TimePoint::from_hms(13, 0, 0);
        let mut space = SearchSpace::new();
        for s in (0..36u32).step_by(4) {
            for g in (2..36u32).step_by(6) {
                let d0 = dijkstra::shortest_travel_time(&net, NodeId(s), NodeId(g), t)
                    .expect("grid connected")
                    .as_secs_f64();
                let bounded = shortest_travel_time_overlaid_in(
                    &net,
                    &overlay,
                    NodeId(s),
                    NodeId(g),
                    t,
                    Some(overlay.search_bound(d0)),
                    &mut space,
                );
                let unbounded = shortest_travel_time_overlaid_in(
                    &net,
                    &overlay,
                    NodeId(s),
                    NodeId(g),
                    t,
                    None,
                    &mut space,
                );
                assert_eq!(bounded, unbounded, "{s}->{g}");
                // The perturbed distance sits inside the [d0, bound] bracket.
                let secs = bounded.unwrap().as_secs_f64();
                assert!(secs >= d0 - 1e-9 && secs <= overlay.search_bound(d0));
            }
        }
    }

    #[test]
    fn one_to_many_overlaid_matches_pointwise() {
        let net = GridCityBuilder::new(5, 4).build();
        let overlay = overlay_on(&net, 1.8, 4);
        let t = TimePoint::from_hms(9, 0, 0);
        let targets: Vec<NodeId> = net.node_ids().step_by(3).collect();
        let mut space = SearchSpace::new();
        let batch =
            one_to_many_overlaid_in(&net, &overlay, NodeId(1), &targets, t, None, &mut space);
        for (i, &target) in targets.iter().enumerate() {
            let single = shortest_travel_time_overlaid_in(
                &net,
                &overlay,
                NodeId(1),
                target,
                t,
                None,
                &mut space,
            );
            assert_eq!(batch[i], single, "target {target}");
        }
    }

    #[test]
    fn overlaid_path_reconstruction_is_consistent() {
        let net = GridCityBuilder::new(5, 5).build();
        let overlay = overlay_on(&net, 4.0, 2);
        let t = TimePoint::from_hms(12, 0, 0);
        let mut space = SearchSpace::new();
        let path = shortest_path_overlaid_in(&net, &overlay, NodeId(0), NodeId(24), t, &mut space)
            .unwrap();
        assert_eq!(path.nodes.first(), Some(&NodeId(0)));
        assert_eq!(path.nodes.last(), Some(&NodeId(24)));
        // Summing the overlaid edge weights along the path reproduces the
        // reported travel time.
        let mut total = 0.0;
        for pair in path.nodes.windows(2) {
            let (eid, _) = net
                .out_edges(pair[0])
                .find(|(_, e)| e.to == pair[1])
                .expect("consecutive path nodes are adjacent");
            total += overlay.edge_secs(&net, eid, t);
        }
        assert!((total - path.travel_time.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn overlay_combines_overlapping_factors_by_max() {
        let mut overlay = TrafficOverlay::new();
        overlay.slow_edge(EdgeId(3), 1.5);
        overlay.slow_edge(EdgeId(3), 2.0);
        overlay.slow_edge(EdgeId(3), 1.2);
        assert_eq!(overlay.multiplier(EdgeId(3)), 2.0);
        assert_eq!(overlay.max_multiplier(), 2.0);
        assert_eq!(overlay.len(), 1);
        // Factor 1.0 is a no-op, not an entry.
        overlay.slow_edge(EdgeId(9), 1.0);
        assert_eq!(overlay.len(), 1);
    }

    #[test]
    #[should_panic(expected = "overlay factor must be ≥ 1")]
    fn speedup_factors_are_rejected() {
        let mut overlay = TrafficOverlay::new();
        overlay.slow_edge(EdgeId(0), 0.5);
    }

    #[test]
    fn disconnected_targets_stay_unreachable() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.01));
        let d = b.add_node(GeoPoint::new(0.0, 0.02));
        b.add_edge(a, c, 100.0, RoadClass::Local);
        let net = b.build();
        let mut overlay = TrafficOverlay::new();
        overlay.slow_edge(EdgeId(0), 2.0);
        let mut space = SearchSpace::new();
        assert_eq!(
            shortest_travel_time_overlaid_in(
                &net,
                &overlay,
                a,
                d,
                TimePoint::MIDNIGHT,
                None,
                &mut space
            ),
            None
        );
    }
}
