//! Contraction hierarchies distance oracle.
//!
//! The fourth shortest-path backend (Geisberger et al.'s *contraction
//! hierarchies*): nodes are contracted one by one in ascending "importance",
//! inserting *shortcut* arcs that preserve shortest-path distances among the
//! remaining nodes; a query then runs two upward Dijkstra searches — forward
//! from the source, backward from the target — over a DAG-like search graph
//! whose depth is logarithmic in practice, which is what makes point-to-point
//! queries orders of magnitude faster than plain Dijkstra.
//!
//! Like [`crate::hub_labels`], an index is exact for one [`HourSlot`] (edge
//! weights are constant within a slot), so [`crate::ShortestPathEngine`]
//! keeps one lazily-built [`ContractionHierarchy`] per slot. Unlike hub
//! labels, the index also answers *path* queries: every shortcut remembers
//! its two constituent arcs, so a query result unpacks recursively into the
//! original edge sequence.
//!
//! Implementation notes:
//!
//! * **Node ordering** uses the classic edge-difference heuristic (shortcuts
//!   added minus arcs removed) plus a deleted-neighbours term, maintained
//!   *lazily*: a popped candidate is re-evaluated and re-queued if its
//!   priority is no longer minimal.
//! * **Witness searches** are budgeted: a search that exhausts its settle
//!   budget conservatively inserts the shortcut, which can only make the
//!   index larger, never incorrect.
//! * **Queries** are allocation-free in steady state: the bidirectional
//!   search runs in a pooled pair of generation-stamped
//!   [`SearchSpace`](crate::dijkstra::SearchSpace)s.

use crate::dijkstra::{SearchSpace, NO_EDGE};
use crate::graph::RoadNetwork;
use crate::ids::{EdgeId, NodeId};
use crate::timeofday::{Duration, HourSlot, TimePoint};
use crate::PathResult;
use parking_lot::Mutex;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Cap on pooled query spaces (one pair is ~6 words per node; a handful
/// covers every worker thread of the dispatcher).
const MAX_POOLED_SPACES: usize = 32;

/// Settle budget for one witness search. Exhausting it falls back to
/// inserting the shortcut, so the constant trades index size for build time.
const WITNESS_SETTLE_BUDGET: usize = 512;

/// An arc of the hierarchy: an original road segment or a shortcut standing
/// for exactly two consecutive arcs.
#[derive(Clone, Copy, Debug)]
struct ChArc {
    from: u32,
    to: u32,
    weight: f64,
    kind: ArcKind,
}

#[derive(Clone, Copy, Debug)]
enum ArcKind {
    /// An original edge of the road network.
    Edge(EdgeId),
    /// A shortcut replacing `arcs[left]` followed by `arcs[right]`.
    Shortcut { left: u32, right: u32 },
}

/// One direction of the CSR search graph: for every node, the upward arcs
/// leaving it (forward: original direction; backward: reversed).
#[derive(Clone, Debug, Default)]
struct SearchGraph {
    offsets: Vec<u32>,
    /// `(neighbour, weight, arc index)` triples.
    arcs: Vec<(u32, f64, u32)>,
}

impl SearchGraph {
    #[inline]
    fn neighbours(&self, node: usize) -> &[(u32, f64, u32)] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.arcs[lo..hi]
    }
}

/// A 4-ary min-heap keyed on the raw bit pattern of a non-negative `f64`
/// (IEEE-754 orders non-negative floats like their bit patterns), with the
/// node id as a deterministic tie-break.
///
/// CH searches settle only a few dozen nodes, so per-operation constants
/// dominate; integer-comparing a shallow 4-ary heap is markedly cheaper than
/// `BinaryHeap`'s three-way `f64` comparator at these sizes.
#[derive(Debug, Default)]
struct MinQueue {
    data: Vec<(u64, u32)>,
}

impl MinQueue {
    #[inline]
    fn clear(&mut self) {
        self.data.clear();
    }

    #[inline]
    fn push(&mut self, cost: f64, node: u32) {
        debug_assert!(cost >= 0.0, "bit-ordered keys need non-negative costs");
        let mut i = self.data.len();
        self.data.push((cost.to_bits(), node));
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.data[parent] <= self.data[i] {
                break;
            }
            self.data.swap(parent, i);
            i = parent;
        }
    }

    #[inline]
    fn peek_cost(&self) -> f64 {
        self.data.first().map_or(f64::INFINITY, |&(bits, _)| f64::from_bits(bits))
    }

    #[inline]
    fn pop(&mut self) -> Option<(f64, u32)> {
        let top = *self.data.first()?;
        let last = self.data.pop().expect("non-empty");
        if !self.data.is_empty() {
            self.data[0] = last;
            let mut i = 0;
            loop {
                let first_child = 4 * i + 1;
                if first_child >= self.data.len() {
                    break;
                }
                let mut smallest = first_child;
                for child in (first_child + 1)..(first_child + 4).min(self.data.len()) {
                    if self.data[child] < self.data[smallest] {
                        smallest = child;
                    }
                }
                if self.data[i] <= self.data[smallest] {
                    break;
                }
                self.data.swap(i, smallest);
                i = smallest;
            }
        }
        Some((f64::from_bits(top.0), top.1))
    }
}

/// A pooled pair of per-direction query states: generation-stamped node
/// arrays plus the dedicated queue.
#[derive(Debug, Default)]
struct QuerySpace {
    fwd: SearchSpace,
    bwd: SearchSpace,
    fwd_queue: MinQueue,
    bwd_queue: MinQueue,
}

/// Exact contraction-hierarchy index for one hour slot of a road network.
#[derive(Debug)]
pub struct ContractionHierarchy {
    slot: HourSlot,
    node_count: usize,
    /// All arcs: original edges first, then shortcuts (for unpacking).
    arcs: Vec<ChArc>,
    /// Forward upward graph: arcs `u → v` with `rank[v] > rank[u]`.
    fwd: SearchGraph,
    /// Backward upward graph: arcs `u → v` with `rank[u] > rank[v]`, stored
    /// at `v` (the backward search walks them head-to-tail).
    bwd: SearchGraph,
    /// Number of shortcut arcs inserted during preprocessing.
    shortcut_count: usize,
    /// Pool of bidirectional query spaces (forward, backward). Boxed on
    /// purpose: checkout/check-in then moves one pointer instead of the
    /// ~400-byte space struct while the pool lock is held.
    #[allow(clippy::vec_box)]
    spaces: Mutex<Vec<Box<QuerySpace>>>,
}

impl ContractionHierarchy {
    /// Builds the hierarchy for `slot` by contracting every node in
    /// edge-difference order with lazy priority updates.
    pub fn build(network: &RoadNetwork, slot: HourSlot) -> Self {
        let n = network.node_count();
        let t = slot_time(slot);

        // Original arcs, weighted at the slot's representative time.
        let mut arcs: Vec<ChArc> = network
            .edge_ids()
            .map(|eid| {
                let edge = network.edge(eid);
                ChArc {
                    from: edge.from.0,
                    to: edge.to.0,
                    weight: network.travel_time(eid, t).as_secs_f64(),
                    kind: ArcKind::Edge(eid),
                }
            })
            .collect();

        // Dynamic adjacency over uncontracted nodes (arc indices).
        let mut out_arcs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut in_arcs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (idx, arc) in arcs.iter().enumerate() {
            out_arcs[arc.from as usize].push(idx as u32);
            in_arcs[arc.to as usize].push(idx as u32);
        }

        let mut contracted = vec![false; n];
        let mut deleted_neighbours = vec![0u32; n];
        let mut rank = vec![0u32; n];
        let mut witness = SearchSpace::with_capacity(n);
        let mut scratch = ContractionScratch::default();

        let mut queue: BinaryHeap<PriorityEntry> = (0..n as u32)
            .map(|node| PriorityEntry {
                priority: node_priority(
                    node,
                    &arcs,
                    &out_arcs,
                    &in_arcs,
                    &contracted,
                    &deleted_neighbours,
                    &mut witness,
                    &mut scratch,
                ),
                node,
            })
            .collect();

        let mut next_rank = 0u32;
        let mut shortcut_count = 0usize;
        while let Some(PriorityEntry { priority, node }) = queue.pop() {
            let v = node as usize;
            if contracted[v] {
                continue;
            }
            // Lazy update: re-evaluate; if the node is no longer (weakly)
            // minimal, re-queue it and look at the next candidate.
            let current = node_priority(
                node,
                &arcs,
                &out_arcs,
                &in_arcs,
                &contracted,
                &deleted_neighbours,
                &mut witness,
                &mut scratch,
            );
            if current > priority {
                if let Some(top) = queue.peek() {
                    if (current, node) > (top.priority, top.node) {
                        queue.push(PriorityEntry { priority: current, node });
                        continue;
                    }
                }
            }

            // Contract `v`. The lazy re-evaluation above already ran
            // gather_shortcuts for exactly this node and nothing has changed
            // since, so `scratch.shortcuts` holds the shortcuts to insert —
            // re-gathering here would double every witness search.
            for &(left, right, weight) in &scratch.shortcuts {
                let from = arcs[left as usize].from;
                let to = arcs[right as usize].to;
                let idx = arcs.len() as u32;
                arcs.push(ChArc { from, to, weight, kind: ArcKind::Shortcut { left, right } });
                out_arcs[from as usize].push(idx);
                in_arcs[to as usize].push(idx);
                shortcut_count += 1;
            }
            contracted[v] = true;
            rank[v] = next_rank;
            next_rank += 1;
            for &a in out_arcs[v].iter().chain(in_arcs[v].iter()) {
                let arc = &arcs[a as usize];
                for endpoint in [arc.from as usize, arc.to as usize] {
                    if endpoint != v && !contracted[endpoint] {
                        deleted_neighbours[endpoint] += 1;
                    }
                }
            }
        }

        // Split arcs into the two upward search graphs (ranks are distinct,
        // so every arc lands in exactly one).
        let fwd = build_search_graph(n, &arcs, &rank, true);
        let bwd = build_search_graph(n, &arcs, &rank, false);

        ContractionHierarchy {
            slot,
            node_count: n,
            arcs,
            fwd,
            bwd,
            shortcut_count,
            spaces: Mutex::new(Vec::new()),
        }
    }

    /// The hour slot this index was built for.
    pub fn slot(&self) -> HourSlot {
        self.slot
    }

    /// Number of shortcut arcs the preprocessing inserted (index-size metric
    /// reported by the benchmarks).
    pub fn shortcut_count(&self) -> usize {
        self.shortcut_count
    }

    /// Exact shortest travel time from `source` to `target`, or `None` if
    /// unreachable.
    pub fn travel_time(&self, source: NodeId, target: NodeId) -> Option<Duration> {
        let mut query = self.checkout();
        self.search(source, target, &mut query).map(|(dist, _)| Duration::from_secs_f64(dist))
    }

    /// Exact shortest travel times from `source` to each target (`None` for
    /// unreachable pairs), reusing one pooled space pair for the whole batch.
    pub fn travel_times_to_many(
        &self,
        source: NodeId,
        targets: &[NodeId],
    ) -> Vec<Option<Duration>> {
        let mut query = self.checkout();
        targets
            .iter()
            .map(|&target| {
                self.search(source, target, &mut query)
                    .map(|(dist, _)| Duration::from_secs_f64(dist))
            })
            .collect()
    }

    /// Shortest path with the full node sequence, unpacking shortcuts back
    /// into original road segments.
    pub fn shortest_path(
        &self,
        network: &RoadNetwork,
        source: NodeId,
        target: NodeId,
    ) -> Option<PathResult> {
        if source == target {
            return Some(PathResult {
                travel_time: Duration::ZERO,
                length_m: 0.0,
                nodes: vec![source],
            });
        }
        let mut query = self.checkout();
        let found = self.search(source, target, &mut query);
        found.map(|(dist, meet)| {
            // Walk parent arcs from the meeting node back to both endpoints,
            // then unpack every arc (shortcuts recurse) into edge ids.
            let mut up_arcs: Vec<u32> = Vec::new();
            let mut cursor = meet;
            loop {
                let parent = query.fwd.parent_raw(cursor);
                if parent == NO_EDGE {
                    break;
                }
                up_arcs.push(parent);
                cursor = self.arcs[parent as usize].from as usize;
            }
            up_arcs.reverse();
            let mut cursor = meet;
            loop {
                let parent = query.bwd.parent_raw(cursor);
                if parent == NO_EDGE {
                    break;
                }
                up_arcs.push(parent);
                cursor = self.arcs[parent as usize].to as usize;
            }

            let mut edges: Vec<EdgeId> = Vec::new();
            for &arc in &up_arcs {
                self.unpack_arc(arc, &mut edges);
            }
            let mut nodes = Vec::with_capacity(edges.len() + 1);
            nodes.push(source);
            let mut length_m = 0.0;
            for eid in edges {
                let edge = network.edge(eid);
                debug_assert_eq!(Some(&edge.from), nodes.last());
                nodes.push(edge.to);
                length_m += edge.length_m;
            }
            PathResult { travel_time: Duration::from_secs_f64(dist), length_m, nodes }
        })
    }

    /// Bidirectional upward Dijkstra. Returns the shortest distance and the
    /// meeting node (as an index), or `None` when unreachable.
    fn search(
        &self,
        source: NodeId,
        target: NodeId,
        query: &mut QuerySpace,
    ) -> Option<(f64, usize)> {
        if source == target {
            return Some((0.0, source.index()));
        }
        let QuerySpace { fwd, bwd, fwd_queue, bwd_queue } = query;
        fwd.begin(self.node_count);
        bwd.begin(self.node_count);
        fwd_queue.clear();
        bwd_queue.clear();
        fwd.update_no_time(source.index(), 0.0, NO_EDGE);
        fwd_queue.push(0.0, source.0);
        bwd.update_no_time(target.index(), 0.0, NO_EDGE);
        bwd_queue.push(0.0, target.0);

        let mut best = f64::INFINITY;
        let mut meet = usize::MAX;
        loop {
            let fwd_top = fwd_queue.peek_cost();
            let bwd_top = bwd_queue.peek_cost();
            // CH termination: neither queue can improve on the best meeting.
            if fwd_top.min(bwd_top) >= best {
                break;
            }
            // Pick the direction with the cheaper frontier. (Stall-on-demand
            // was tried here and measured as a net loss at our network sizes
            // — the searches are already only a few dozen pops — so the loop
            // stays lean; revisit once city graphs grow past ~10^5 nodes.)
            let (graph, space, other, queue) = if fwd_top <= bwd_top {
                (&self.fwd, &mut *fwd, &mut *bwd, &mut *fwd_queue)
            } else {
                (&self.bwd, &mut *bwd, &mut *fwd, &mut *bwd_queue)
            };
            let (cost, node) = queue.pop().expect("peeked cost implies an entry");
            let i = node as usize;
            if space.is_settled(i) || cost > space.dist(i) {
                continue;
            }
            space.settle(i);
            let opposite = other.dist(i);
            if opposite.is_finite() && cost + opposite < best {
                best = cost + opposite;
                meet = i;
            }
            for &(to, weight, arc) in graph.neighbours(i) {
                let j = to as usize;
                let next = cost + weight;
                // A label at or beyond `best` can never improve the meeting
                // (every continuation only adds weight), so don't queue it.
                if next < space.dist(j) && next < best {
                    space.update_no_time(j, next, arc);
                    queue.push(next, to);
                    // A relaxed node the other side already reached is a
                    // meeting candidate even if never settled on this side.
                    let opposite = other.dist(j);
                    if next + opposite < best {
                        best = next + opposite;
                        meet = j;
                    }
                }
            }
        }

        if best.is_finite() {
            Some((best, meet))
        } else {
            None
        }
    }

    fn unpack_arc(&self, arc: u32, out: &mut Vec<EdgeId>) {
        match self.arcs[arc as usize].kind {
            ArcKind::Edge(eid) => out.push(eid),
            ArcKind::Shortcut { left, right } => {
                self.unpack_arc(left, out);
                self.unpack_arc(right, out);
            }
        }
    }

    /// Checks a query space out of the pool; the guard returns it on drop,
    /// so every exit path (including panics) re-pools the space.
    fn checkout(&self) -> QueryGuard<'_> {
        let query = self.spaces.lock().pop().unwrap_or_default();
        QueryGuard { pool: &self.spaces, query: Some(query) }
    }
}

/// RAII checkout of a pooled [`QuerySpace`].
struct QueryGuard<'a> {
    #[allow(clippy::vec_box)] // mirrors the pool field: moves stay pointer-sized
    pool: &'a Mutex<Vec<Box<QuerySpace>>>,
    query: Option<Box<QuerySpace>>,
}

impl std::ops::Deref for QueryGuard<'_> {
    type Target = QuerySpace;
    fn deref(&self) -> &QuerySpace {
        self.query.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for QueryGuard<'_> {
    fn deref_mut(&mut self) -> &mut QuerySpace {
        self.query.as_mut().expect("present until drop")
    }
}

impl Drop for QueryGuard<'_> {
    fn drop(&mut self) {
        if let Some(query) = self.query.take() {
            let mut pool = self.pool.lock();
            if pool.len() < MAX_POOLED_SPACES {
                pool.push(query);
            }
        }
    }
}

/// Scratch buffers reused across priority evaluations and contractions.
#[derive(Default)]
struct ContractionScratch {
    /// `(in-arc, out-arc, weight)` triples of the shortcuts a contraction
    /// would insert.
    shortcuts: Vec<(u32, u32, f64)>,
    /// Minimal in-arc per uncontracted in-neighbour.
    ins: Vec<(u32, u32, f64)>,
    /// Minimal out-arc per uncontracted out-neighbour.
    outs: Vec<(u32, u32, f64)>,
}

/// Min-heap entry of the contraction queue (ties broken by node id so the
/// ordering — and therefore the whole index — is deterministic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PriorityEntry {
    priority: i64,
    node: u32,
}

impl PartialOrd for PriorityEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PriorityEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.priority, other.node).cmp(&(self.priority, self.node))
    }
}

/// Representative query time of a slot (edge weights are constant within a
/// slot, so any instant inside it works; mid-slot mirrors `hub_labels`).
fn slot_time(slot: HourSlot) -> TimePoint {
    TimePoint::from_hms(u32::from(slot.hour()), 30, 0)
}

/// Collects, per uncontracted neighbour of `v`, the cheapest in/out arcs —
/// the only arcs that can carry a shortest path through `v`.
fn collect_neighbour_arcs(
    v: u32,
    arcs: &[ChArc],
    out_arcs: &[Vec<u32>],
    in_arcs: &[Vec<u32>],
    contracted: &[bool],
    scratch: &mut ContractionScratch,
) {
    scratch.ins.clear();
    scratch.outs.clear();
    for &a in &in_arcs[v as usize] {
        let arc = &arcs[a as usize];
        let u = arc.from;
        if u == v || contracted[u as usize] {
            continue;
        }
        match scratch.ins.iter_mut().find(|(node, _, _)| *node == u) {
            Some(entry) if arc.weight < entry.2 => {
                entry.1 = a;
                entry.2 = arc.weight;
            }
            Some(_) => {}
            None => scratch.ins.push((u, a, arc.weight)),
        }
    }
    for &a in &out_arcs[v as usize] {
        let arc = &arcs[a as usize];
        let w = arc.to;
        if w == v || contracted[w as usize] {
            continue;
        }
        match scratch.outs.iter_mut().find(|(node, _, _)| *node == w) {
            Some(entry) if arc.weight < entry.2 => {
                entry.1 = a;
                entry.2 = arc.weight;
            }
            Some(_) => {}
            None => scratch.outs.push((w, a, arc.weight)),
        }
    }
}

/// Determines the shortcuts contracting `v` requires (into
/// `scratch.shortcuts`): for every in-neighbour `u` and out-neighbour `w`, a
/// shortcut `u → w` is needed unless a *witness* path avoiding `v` is at
/// least as short.
#[allow(clippy::too_many_arguments)]
fn gather_shortcuts(
    v: u32,
    arcs: &[ChArc],
    out_arcs: &[Vec<u32>],
    in_arcs: &[Vec<u32>],
    contracted: &[bool],
    witness: &mut SearchSpace,
    scratch: &mut ContractionScratch,
) {
    collect_neighbour_arcs(v, arcs, out_arcs, in_arcs, contracted, scratch);
    scratch.shortcuts.clear();
    if scratch.ins.is_empty() || scratch.outs.is_empty() {
        return;
    }
    let ins = std::mem::take(&mut scratch.ins);
    let outs = std::mem::take(&mut scratch.outs);
    for &(u, in_arc, in_weight) in &ins {
        let cap = outs
            .iter()
            .filter(|&&(w, _, _)| w != u)
            .map(|&(_, _, out_weight)| in_weight + out_weight)
            .fold(0.0_f64, f64::max);
        witness_search(u, v, cap, &outs, arcs, out_arcs, contracted, witness);
        for &(w, out_arc, out_weight) in &outs {
            if w == u {
                continue;
            }
            let via = in_weight + out_weight;
            let witnessed =
                witness.is_settled(w as usize) && witness.dist(w as usize) <= via + 1e-9;
            if !witnessed {
                scratch.shortcuts.push((in_arc, out_arc, via));
            }
        }
    }
    scratch.ins = ins;
    scratch.outs = outs;
}

/// Budgeted multi-target Dijkstra from `u` over uncontracted nodes avoiding
/// `v`. Settled targets certify witness distances; an exhausted budget simply
/// leaves targets unsettled (⇒ shortcut inserted, conservatively).
#[allow(clippy::too_many_arguments)]
fn witness_search(
    u: u32,
    v: u32,
    cap: f64,
    targets: &[(u32, u32, f64)],
    arcs: &[ChArc],
    out_arcs: &[Vec<u32>],
    contracted: &[bool],
    witness: &mut SearchSpace,
) {
    witness.begin(contracted.len());
    let mut remaining = 0usize;
    for &(w, _, _) in targets {
        if w != u && witness.mark_target(w as usize) {
            remaining += 1;
        }
    }
    witness.update(u as usize, 0.0, 0.0, NO_EDGE);
    witness.push(0.0, NodeId(u));
    let mut budget = WITNESS_SETTLE_BUDGET;
    while remaining > 0 && budget > 0 {
        let Some((cost, node)) = witness.pop() else { break };
        if cost > cap + 1e-9 {
            break;
        }
        let i = node.index();
        if witness.is_settled(i) || cost > witness.dist(i) {
            continue;
        }
        witness.settle(i);
        budget -= 1;
        if witness.take_target(i) {
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        for &a in &out_arcs[i] {
            let arc = &arcs[a as usize];
            let j = arc.to as usize;
            if arc.to == v || contracted[j] || witness.is_settled(j) {
                continue;
            }
            let next = cost + arc.weight;
            if next < witness.dist(j) {
                witness.update(j, next, next, NO_EDGE);
                witness.push(next, NodeId(arc.to));
            }
        }
    }
}

/// Priority of contracting `node` right now: the edge-difference heuristic
/// (shortcuts − removed arcs) plus the deleted-neighbours term that spreads
/// contraction evenly across the network.
#[allow(clippy::too_many_arguments)]
fn node_priority(
    node: u32,
    arcs: &[ChArc],
    out_arcs: &[Vec<u32>],
    in_arcs: &[Vec<u32>],
    contracted: &[bool],
    deleted_neighbours: &[u32],
    witness: &mut SearchSpace,
    scratch: &mut ContractionScratch,
) -> i64 {
    gather_shortcuts(node, arcs, out_arcs, in_arcs, contracted, witness, scratch);
    let removed = (scratch.ins.len() + scratch.outs.len()) as i64;
    let added = scratch.shortcuts.len() as i64;
    2 * (added - removed) + i64::from(deleted_neighbours[node as usize])
}

/// Builds one direction of the upward search graph in CSR form.
fn build_search_graph(n: usize, arcs: &[ChArc], rank: &[u32], forward: bool) -> SearchGraph {
    let mut counts = vec![0u32; n + 1];
    let mut keep: Vec<(usize, u32)> = Vec::new();
    for (idx, arc) in arcs.iter().enumerate() {
        let (tail, head) = (arc.from as usize, arc.to as usize);
        if forward && rank[head] > rank[tail] {
            keep.push((tail, idx as u32));
            counts[tail + 1] += 1;
        } else if !forward && rank[tail] > rank[head] {
            keep.push((head, idx as u32));
            counts[head + 1] += 1;
        }
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut slots = vec![(0u32, 0.0f64, 0u32); keep.len()];
    for (node, idx) in keep {
        let arc = &arcs[idx as usize];
        let neighbour = if forward { arc.to } else { arc.from };
        slots[cursor[node] as usize] = (neighbour, arc.weight, idx);
        cursor[node] += 1;
    }
    SearchGraph { offsets, arcs: slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::RoadClass;
    use crate::dijkstra;
    use crate::generators::{GridCityBuilder, RandomCityBuilder};
    use crate::geo::GeoPoint;
    use crate::graph::RoadNetworkBuilder;

    fn assert_matches_dijkstra(network: &RoadNetwork, slot: HourSlot) {
        let index = ContractionHierarchy::build(network, slot);
        let t = slot_time(slot);
        let nodes: Vec<NodeId> = network.node_ids().collect();
        for &s in nodes.iter().step_by(3) {
            let reference = dijkstra::one_to_all(network, s, t);
            for (j, &g) in nodes.iter().enumerate().step_by(2) {
                let expected = reference[j];
                let got = index.travel_time(s, g);
                match (expected, got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert!(
                        (a.as_secs_f64() - b.as_secs_f64()).abs() < 1e-6,
                        "{s}->{g}: dijkstra {a:?} vs CH {b:?}"
                    ),
                    other => panic!("{s}->{g}: reachability mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_grid() {
        let net = GridCityBuilder::new(6, 6).build();
        assert_matches_dijkstra(&net, HourSlot::new(13));
    }

    #[test]
    fn matches_dijkstra_on_random_city_at_peak() {
        let net = RandomCityBuilder::new(70).seed(9).build();
        assert_matches_dijkstra(&net, HourSlot::new(20));
    }

    #[test]
    fn matches_dijkstra_on_random_city_off_peak() {
        let net = RandomCityBuilder::new(50).seed(3).build();
        assert_matches_dijkstra(&net, HourSlot::new(4));
    }

    #[test]
    fn same_node_query_is_zero() {
        let net = GridCityBuilder::new(3, 3).build();
        let index = ContractionHierarchy::build(&net, HourSlot::new(0));
        assert_eq!(index.travel_time(NodeId(4), NodeId(4)), Some(Duration::ZERO));
    }

    #[test]
    fn disconnected_nodes_are_unreachable() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.01));
        let lonely = b.add_node(GeoPoint::new(1.0, 1.0));
        b.add_bidirectional(a, c, 500.0, RoadClass::Local);
        let net = b.build();
        let index = ContractionHierarchy::build(&net, HourSlot::new(12));
        assert_eq!(index.travel_time(a, lonely), None);
        assert!(index.shortest_path(&net, a, lonely).is_none());
        assert!(index.travel_time(a, c).is_some());
    }

    #[test]
    fn unpacked_paths_are_valid_and_optimal() {
        let net = RandomCityBuilder::new(60).seed(5).build();
        let slot = HourSlot::new(13);
        let index = ContractionHierarchy::build(&net, slot);
        let t = slot_time(slot);
        let nodes: Vec<NodeId> = net.node_ids().collect();
        let mut checked = 0;
        for &s in nodes.iter().step_by(7) {
            for &g in nodes.iter().step_by(11) {
                let expected = dijkstra::shortest_path(&net, s, g, t);
                let got = index.shortest_path(&net, s, g);
                match (expected, got) {
                    (None, None) => {}
                    (Some(reference), Some(path)) => {
                        checked += 1;
                        assert_eq!(path.nodes.first(), Some(&s));
                        assert_eq!(path.nodes.last(), Some(&g));
                        assert!(
                            (path.travel_time.as_secs_f64() - reference.travel_time.as_secs_f64())
                                .abs()
                                < 1e-6,
                            "{s}->{g}: {path:?} vs {reference:?}"
                        );
                        // Consecutive nodes must be adjacent, and the edge
                        // times must sum to the reported travel time.
                        let mut total = 0.0;
                        for pair in path.nodes.windows(2) {
                            let (eid, _) = net
                                .out_edges(pair[0])
                                .find(|(_, e)| e.to == pair[1])
                                .expect("unpacked path nodes must be adjacent");
                            total += net.travel_time(eid, t).as_secs_f64();
                        }
                        assert!((total - path.travel_time.as_secs_f64()).abs() < 1e-6);
                    }
                    other => panic!("{s}->{g}: reachability mismatch {other:?}"),
                }
            }
        }
        assert!(checked > 0, "sampled pairs should include reachable ones");
    }

    #[test]
    fn to_many_matches_single_queries() {
        let net = GridCityBuilder::new(5, 5).build();
        let index = ContractionHierarchy::build(&net, HourSlot::new(12));
        let targets: Vec<NodeId> = net.node_ids().step_by(3).collect();
        let batch = index.travel_times_to_many(NodeId(2), &targets);
        for (i, &target) in targets.iter().enumerate() {
            assert_eq!(batch[i], index.travel_time(NodeId(2), target));
        }
    }

    #[test]
    fn build_is_deterministic() {
        let net = RandomCityBuilder::new(40).seed(17).build();
        let a = ContractionHierarchy::build(&net, HourSlot::new(12));
        let b = ContractionHierarchy::build(&net, HourSlot::new(12));
        assert_eq!(a.shortcut_count(), b.shortcut_count());
        assert_eq!(a.slot(), b.slot());
        for s in net.node_ids().step_by(5) {
            for g in net.node_ids().step_by(7) {
                assert_eq!(a.travel_time(s, g), b.travel_time(s, g));
            }
        }
    }
}
