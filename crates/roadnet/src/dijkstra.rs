//! Time-sliced shortest paths.
//!
//! The paper writes `SP(u, v, t)` for the length of the quickest path from
//! `u` to `v` "at time `t`": edge weights are evaluated at the query time and
//! treated as static for the duration of the query (the same snapshot
//! semantics used when building the FoodGraph). This module provides:
//!
//! * [`shortest_travel_time`] / [`shortest_path`] — one-to-one queries,
//!   optionally returning the node sequence.
//! * [`one_to_many`] — distances from one source to a set of targets with a
//!   single partial Dijkstra run (used heavily by the cost model).
//! * [`one_to_all`] — a full shortest-path tree (used to build hub labels and
//!   reference results in tests).
//! * [`Expansion`] — a lazy best-first iterator yielding nodes in ascending
//!   distance from a source, which is exactly the primitive Algorithm 2 needs
//!   to find the `k` nearest batch start nodes of a vehicle, and which also
//!   accepts a custom edge-weight function so the vehicle-sensitive weight
//!   `α(v, e, t)` of Eq. 8 can be plugged in.

use crate::graph::RoadNetwork;
use crate::ids::{EdgeId, NodeId};
use crate::timeofday::{Duration, TimePoint};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The result of a point-to-point shortest-path query.
#[derive(Clone, Debug, PartialEq)]
pub struct PathResult {
    /// Total traversal time of the path.
    pub travel_time: Duration,
    /// Total length of the path in meters.
    pub length_m: f64,
    /// The node sequence from source to target (inclusive).
    pub nodes: Vec<NodeId>,
}

/// Entry in the Dijkstra priority queue; ordered so the smallest cost pops
/// first from Rust's max-heap.
#[derive(Clone, Copy, Debug)]
struct QueueEntry {
    cost: f64,
    node: NodeId,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the minimum cost first.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("costs are never NaN")
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// Shortest (quickest) travel time from `source` to `target` at time `t`, or
/// `None` if `target` is unreachable.
pub fn shortest_travel_time(
    network: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    t: TimePoint,
) -> Option<Duration> {
    if source == target {
        return Some(Duration::ZERO);
    }
    let mut expansion = Expansion::new(network, source, t);
    for settled in expansion.by_ref() {
        if settled.node == target {
            return Some(settled.travel_time);
        }
    }
    None
}

/// Shortest path (node sequence, travel time, length) from `source` to
/// `target` at time `t`, or `None` if unreachable.
pub fn shortest_path(
    network: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    t: TimePoint,
) -> Option<PathResult> {
    let n = network.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(QueueEntry { cost: 0.0, node: source });

    while let Some(QueueEntry { cost, node }) = heap.pop() {
        if cost > dist[node.index()] {
            continue;
        }
        if node == target {
            break;
        }
        for (eid, edge) in network.out_edges(node) {
            let next = cost + network.travel_time(eid, t).as_secs_f64();
            if next < dist[edge.to.index()] {
                dist[edge.to.index()] = next;
                parent_edge[edge.to.index()] = Some(eid);
                heap.push(QueueEntry { cost: next, node: edge.to });
            }
        }
    }

    if dist[target.index()].is_infinite() {
        return None;
    }

    // Reconstruct the node sequence by walking parent edges back to source.
    let mut nodes = vec![target];
    let mut length_m = 0.0;
    let mut cursor = target;
    while cursor != source {
        let eid = parent_edge[cursor.index()].expect("reached node must have a parent edge");
        let edge = network.edge(eid);
        length_m += edge.length_m;
        cursor = edge.from;
        nodes.push(cursor);
    }
    nodes.reverse();

    Some(PathResult { travel_time: Duration::from_secs_f64(dist[target.index()]), length_m, nodes })
}

/// Travel times from `source` to each node in `targets` at time `t`.
///
/// Runs a single Dijkstra that stops as soon as every reachable target has
/// been settled. Unreachable targets map to `None`.
pub fn one_to_many(
    network: &RoadNetwork,
    source: NodeId,
    targets: &[NodeId],
    t: TimePoint,
) -> Vec<Option<Duration>> {
    let mut remaining: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
    let mut found: std::collections::HashMap<NodeId, Duration> =
        std::collections::HashMap::with_capacity(targets.len());

    if remaining.contains(&source) {
        found.insert(source, Duration::ZERO);
        remaining.remove(&source);
    }

    if !remaining.is_empty() {
        let mut expansion = Expansion::new(network, source, t);
        for settled in expansion.by_ref() {
            if remaining.remove(&settled.node) {
                found.insert(settled.node, settled.travel_time);
                if remaining.is_empty() {
                    break;
                }
            }
        }
    }

    targets.iter().map(|n| found.get(n).copied()).collect()
}

/// Travel times from `source` to every node of the network at time `t`
/// (`None` for unreachable nodes).
pub fn one_to_all(network: &RoadNetwork, source: NodeId, t: TimePoint) -> Vec<Option<Duration>> {
    let mut out = vec![None; network.node_count()];
    out[source.index()] = Some(Duration::ZERO);
    for settled in Expansion::new(network, source, t) {
        out[settled.node.index()] = Some(settled.travel_time);
    }
    out
}

/// A node settled by a best-first [`Expansion`], together with its distance
/// from the source under the expansion's weight function and the accumulated
/// *temporal* distance (β-weights), which may differ when a custom weight is
/// in use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Settled {
    /// The settled node.
    pub node: NodeId,
    /// Distance from the source under the expansion's weight function.
    pub weight: f64,
    /// Travel time from the source accumulated along the same tree path.
    pub travel_time: Duration,
}

/// Lazy best-first expansion of the road network from a source node.
///
/// Yields nodes in non-decreasing order of accumulated weight. With the
/// default weight (the temporal edge weight `β(e, t)`) this is plain
/// Dijkstra; Algorithm 2 of the paper swaps in the vehicle-sensitive weight
/// `α(v, e, t)` (Eq. 8) via [`Expansion::with_weight`], so nodes pop in an
/// order that blends travel time with angular distance while the true travel
/// time along the tree path is still tracked for cost computations.
pub struct Expansion<'a> {
    network: &'a RoadNetwork,
    t: TimePoint,
    /// Weight of edge `eid` leaving a node settled at weight `w`; `None`
    /// means "use β(e, t)".
    weight_fn: Option<Box<dyn Fn(EdgeId) -> f64 + 'a>>,
    dist: Vec<f64>,
    time: Vec<f64>,
    settled: Vec<bool>,
    heap: BinaryHeap<QueueEntry>,
    yielded_source: bool,
    source: NodeId,
}

impl<'a> Expansion<'a> {
    /// Starts a best-first expansion from `source` using the temporal edge
    /// weight `β(e, t)`.
    pub fn new(network: &'a RoadNetwork, source: NodeId, t: TimePoint) -> Self {
        Self::build(network, source, t, None)
    }

    /// Starts a best-first expansion from `source` using a caller-supplied
    /// edge weight (must be non-negative and finite for every edge).
    pub fn with_weight(
        network: &'a RoadNetwork,
        source: NodeId,
        t: TimePoint,
        weight: impl Fn(EdgeId) -> f64 + 'a,
    ) -> Self {
        Self::build(network, source, t, Some(Box::new(weight)))
    }

    fn build(
        network: &'a RoadNetwork,
        source: NodeId,
        t: TimePoint,
        weight_fn: Option<Box<dyn Fn(EdgeId) -> f64 + 'a>>,
    ) -> Self {
        let n = network.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut time = vec![f64::INFINITY; n];
        dist[source.index()] = 0.0;
        time[source.index()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(QueueEntry { cost: 0.0, node: source });
        Expansion {
            network,
            t,
            weight_fn,
            dist,
            time,
            settled: vec![false; n],
            heap,
            yielded_source: false,
            source,
        }
    }

    fn edge_weight(&self, eid: EdgeId) -> f64 {
        match &self.weight_fn {
            Some(f) => {
                let w = f(eid);
                debug_assert!(w.is_finite() && w >= 0.0, "custom edge weight must be non-negative");
                w
            }
            None => self.network.travel_time(eid, self.t).as_secs_f64(),
        }
    }
}

impl Iterator for Expansion<'_> {
    type Item = Settled;

    fn next(&mut self) -> Option<Settled> {
        if !self.yielded_source {
            self.yielded_source = true;
            self.settled[self.source.index()] = true;
            // Relax the source's out-edges before yielding it so that the
            // iterator is usable even if the caller stops immediately after.
            self.relax(self.source);
            return Some(Settled { node: self.source, weight: 0.0, travel_time: Duration::ZERO });
        }
        while let Some(QueueEntry { cost, node }) = self.heap.pop() {
            if self.settled[node.index()] || cost > self.dist[node.index()] {
                continue;
            }
            self.settled[node.index()] = true;
            self.relax(node);
            return Some(Settled {
                node,
                weight: cost,
                travel_time: Duration::from_secs_f64(self.time[node.index()]),
            });
        }
        None
    }
}

impl Expansion<'_> {
    fn relax(&mut self, node: NodeId) {
        let base_w = self.dist[node.index()];
        let base_t = self.time[node.index()];
        for (eid, edge) in self.network.out_edges(node) {
            if self.settled[edge.to.index()] {
                continue;
            }
            let w = base_w + self.edge_weight(eid);
            if w < self.dist[edge.to.index()] {
                self.dist[edge.to.index()] = w;
                self.time[edge.to.index()] =
                    base_t + self.network.travel_time(eid, self.t).as_secs_f64();
                self.heap.push(QueueEntry { cost: w, node: edge.to });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::{CongestionProfile, RoadClass};
    use crate::geo::GeoPoint;
    use crate::graph::RoadNetworkBuilder;

    /// A 2x3 grid with uniform 1000 m local edges (free flow ~144.9 s each).
    fn grid_2x3() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new().congestion(CongestionProfile::free_flow());
        let mut ids = Vec::new();
        for r in 0..2 {
            for c in 0..3 {
                ids.push(b.add_node(GeoPoint::new(r as f64 * 0.009, c as f64 * 0.009)));
            }
        }
        let at = |r: usize, c: usize| ids[r * 3 + c];
        for r in 0..2 {
            for c in 0..3 {
                if c + 1 < 3 {
                    b.add_bidirectional(at(r, c), at(r, c + 1), 1000.0, RoadClass::Local);
                }
                if r + 1 < 2 {
                    b.add_bidirectional(at(r, c), at(r + 1, c), 1000.0, RoadClass::Local);
                }
            }
        }
        b.build()
    }

    fn edge_secs() -> f64 {
        1000.0 / RoadClass::Local.free_flow_speed_mps()
    }

    #[test]
    fn travel_time_matches_manhattan_distance_on_grid() {
        let net = grid_2x3();
        let t = TimePoint::from_hms(10, 0, 0);
        let d = shortest_travel_time(&net, NodeId(0), NodeId(5), t).unwrap();
        assert!((d.as_secs_f64() - 3.0 * edge_secs()).abs() < 1e-6);
    }

    #[test]
    fn source_equals_target_is_zero() {
        let net = grid_2x3();
        let t = TimePoint::MIDNIGHT;
        assert_eq!(shortest_travel_time(&net, NodeId(2), NodeId(2), t), Some(Duration::ZERO));
    }

    #[test]
    fn path_reconstruction_is_consistent() {
        let net = grid_2x3();
        let t = TimePoint::from_hms(8, 0, 0);
        let path = shortest_path(&net, NodeId(0), NodeId(5), t).unwrap();
        assert_eq!(path.nodes.first(), Some(&NodeId(0)));
        assert_eq!(path.nodes.last(), Some(&NodeId(5)));
        assert_eq!(path.nodes.len(), 4);
        assert!((path.length_m - 3000.0).abs() < 1e-6);
        // Path travel time must equal the sum of its edge travel times.
        let mut total = 0.0;
        for pair in path.nodes.windows(2) {
            let (eid, _) = net
                .out_edges(pair[0])
                .find(|(_, e)| e.to == pair[1])
                .expect("consecutive path nodes are adjacent");
            total += net.travel_time(eid, t).as_secs_f64();
        }
        assert!((total - path.travel_time.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_returns_none() {
        // Two disconnected nodes.
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.1));
        let d = b.add_node(GeoPoint::new(0.0, 0.2));
        b.add_edge(a, c, 100.0, RoadClass::Local);
        let net = b.build();
        assert_eq!(shortest_travel_time(&net, a, d, TimePoint::MIDNIGHT), None);
        assert!(shortest_path(&net, a, d, TimePoint::MIDNIGHT).is_none());
    }

    #[test]
    fn one_to_many_matches_individual_queries() {
        let net = grid_2x3();
        let t = TimePoint::from_hms(13, 0, 0);
        let targets = [NodeId(1), NodeId(4), NodeId(5), NodeId(0)];
        let batch = one_to_many(&net, NodeId(0), &targets, t);
        for (i, &target) in targets.iter().enumerate() {
            let single = shortest_travel_time(&net, NodeId(0), target, t);
            assert_eq!(batch[i], single, "mismatch for {target}");
        }
    }

    #[test]
    fn one_to_all_covers_connected_grid() {
        let net = grid_2x3();
        let d = one_to_all(&net, NodeId(0), TimePoint::MIDNIGHT);
        assert_eq!(d.len(), 6);
        assert!(d.iter().all(|x| x.is_some()));
        assert_eq!(d[0], Some(Duration::ZERO));
    }

    #[test]
    fn expansion_yields_nodes_in_nondecreasing_order() {
        let net = grid_2x3();
        let weights: Vec<f64> =
            Expansion::new(&net, NodeId(0), TimePoint::MIDNIGHT).map(|s| s.weight).collect();
        assert_eq!(weights.len(), 6);
        for pair in weights.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
    }

    #[test]
    fn expansion_with_custom_weight_changes_order_but_keeps_travel_time() {
        let net = grid_2x3();
        let t = TimePoint::MIDNIGHT;
        // A weight that strongly prefers edges leading to higher node ids.
        let expansion = Expansion::with_weight(&net, NodeId(0), t, |eid| {
            let e = net.edge(eid);
            1000.0 - f64::from(e.to.0)
        });
        for settled in expansion {
            if settled.node != NodeId(0) {
                // Travel time along the chosen tree path can never beat the
                // true shortest travel time.
                let best = shortest_travel_time(&net, NodeId(0), settled.node, t).unwrap();
                assert!(settled.travel_time.as_secs_f64() + 1e-9 >= best.as_secs_f64());
            }
        }
    }

    #[test]
    fn congestion_lengthens_peak_paths() {
        let mut b = RoadNetworkBuilder::new().congestion(CongestionProfile::metropolitan());
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.02));
        b.add_bidirectional(a, c, 2000.0, RoadClass::Arterial);
        let net = b.build();
        let night = shortest_travel_time(&net, a, c, TimePoint::from_hms(3, 0, 0)).unwrap();
        let dinner = shortest_travel_time(&net, a, c, TimePoint::from_hms(20, 0, 0)).unwrap();
        assert!(dinner > night);
    }
}
