//! Time-sliced shortest paths.
//!
//! The paper writes `SP(u, v, t)` for the length of the quickest path from
//! `u` to `v` "at time `t`": edge weights are evaluated at the query time and
//! treated as static for the duration of the query (the same snapshot
//! semantics used when building the FoodGraph). This module provides:
//!
//! * [`shortest_travel_time`] / [`shortest_path`] — one-to-one queries,
//!   optionally returning the node sequence.
//! * [`one_to_many`] — distances from one source to a set of targets with a
//!   single partial Dijkstra run (used heavily by the cost model).
//! * [`one_to_all`] — a full shortest-path tree (used to build hub labels and
//!   reference results in tests).
//! * [`Expansion`] — a lazy best-first iterator yielding nodes in ascending
//!   distance from a source, which is exactly the primitive Algorithm 2 needs
//!   to find the `k` nearest batch start nodes of a vehicle, and which also
//!   accepts a custom edge-weight function so the vehicle-sensitive weight
//!   `α(v, e, t)` of Eq. 8 can be plugged in.
//!
//! ## Allocation-free steady state
//!
//! The dispatcher fires thousands of queries per accumulation window, and a
//! per-query `vec![f64::INFINITY; n]` makes the allocator the bottleneck long
//! before the graph search is. Every search therefore runs inside a reusable
//! [`SearchSpace`]: flat distance/parent/settled arrays stamped with a
//! *generation* counter, reset in O(1) by bumping the generation. Each public
//! query has an `*_in` variant taking `&mut SearchSpace`; the plain variants
//! allocate a throwaway space for convenience, and
//! [`crate::ShortestPathEngine`] keeps a pool of spaces so its hot path never
//! touches the allocator in steady state.

use crate::graph::RoadNetwork;
use crate::ids::{EdgeId, NodeId};
use crate::timeofday::{Duration, TimePoint};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Sentinel for "no parent edge recorded".
pub(crate) const NO_EDGE: u32 = u32::MAX;

/// The result of a point-to-point shortest-path query.
#[derive(Clone, Debug, PartialEq)]
pub struct PathResult {
    /// Total traversal time of the path.
    pub travel_time: Duration,
    /// Total length of the path in meters.
    pub length_m: f64,
    /// The node sequence from source to target (inclusive).
    pub nodes: Vec<NodeId>,
}

/// Entry in the Dijkstra priority queue; ordered so the smallest cost pops
/// first from Rust's max-heap.
#[derive(Clone, Copy, Debug)]
struct QueueEntry {
    cost: f64,
    node: NodeId,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the minimum cost first.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("costs are never NaN")
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// Reusable scratch memory for graph searches, reset in O(1).
///
/// All per-node state (tentative distance, tree travel time, parent edge,
/// settled flag, target mark) lives in flat arrays alongside a *generation*
/// stamp per node. A slot is only valid when its stamp equals the space's
/// current generation, so starting a new search is a single counter bump —
/// no `memset`, no allocation. The arrays grow to the largest network seen
/// and are then reused verbatim, which keeps steady-state queries entirely
/// allocation-free.
#[derive(Debug, Default)]
pub struct SearchSpace {
    dist: Vec<f64>,
    time: Vec<f64>,
    parent: Vec<u32>,
    touched: Vec<u32>,
    settled: Vec<u32>,
    targeted: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<QueueEntry>,
}

impl SearchSpace {
    /// Creates an empty search space; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a search space pre-sized for networks of `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        let mut space = Self::default();
        space.grow(nodes);
        space
    }

    /// Number of nodes the space is currently sized for.
    pub fn node_capacity(&self) -> usize {
        self.dist.len()
    }

    pub(crate) fn grow(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.time.resize(n, f64::INFINITY);
            self.parent.resize(n, NO_EDGE);
            self.touched.resize(n, 0);
            self.settled.resize(n, 0);
            self.targeted.resize(n, 0);
        }
    }

    /// Starts a fresh search over a network of `n` nodes: O(1) unless the
    /// space needs to grow or the 32-bit generation counter wraps (once every
    /// ~4 billion searches, at which point the stamps are re-zeroed).
    pub(crate) fn begin(&mut self, n: usize) {
        self.grow(n);
        if self.generation == u32::MAX {
            self.touched.fill(0);
            self.settled.fill(0);
            self.targeted.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.heap.clear();
    }

    #[inline]
    pub(crate) fn dist(&self, i: usize) -> f64 {
        if self.touched[i] == self.generation {
            self.dist[i]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    pub(crate) fn time_of(&self, i: usize) -> f64 {
        debug_assert_eq!(self.touched[i], self.generation);
        self.time[i]
    }

    #[inline]
    pub(crate) fn update(&mut self, i: usize, dist: f64, time: f64, parent: u32) {
        self.dist[i] = dist;
        self.time[i] = time;
        self.parent[i] = parent;
        self.touched[i] = self.generation;
    }

    /// Like [`Self::update`] but leaves the travel-time array untouched
    /// (for searches whose weight *is* the travel time, e.g. CH queries).
    #[inline]
    pub(crate) fn update_no_time(&mut self, i: usize, dist: f64, parent: u32) {
        self.dist[i] = dist;
        self.parent[i] = parent;
        self.touched[i] = self.generation;
    }

    #[inline]
    pub(crate) fn is_settled(&self, i: usize) -> bool {
        self.settled[i] == self.generation
    }

    #[inline]
    pub(crate) fn settle(&mut self, i: usize) {
        self.settled[i] = self.generation;
    }

    #[inline]
    pub(crate) fn parent_edge(&self, i: usize) -> Option<EdgeId> {
        if self.touched[i] == self.generation && self.parent[i] != NO_EDGE {
            Some(EdgeId(self.parent[i]))
        } else {
            None
        }
    }

    /// Raw parent stamp of `i` ([`NO_EDGE`] when unset). The contraction
    /// hierarchy stores *arc indices* here rather than edge ids, so it reads
    /// the stamp back untyped.
    #[inline]
    pub(crate) fn parent_raw(&self, i: usize) -> u32 {
        if self.touched[i] == self.generation {
            self.parent[i]
        } else {
            NO_EDGE
        }
    }

    /// Marks `i` as a target of the current search; false if already marked.
    #[inline]
    pub(crate) fn mark_target(&mut self, i: usize) -> bool {
        if self.targeted[i] == self.generation {
            false
        } else {
            self.targeted[i] = self.generation;
            true
        }
    }

    /// Consumes a target mark, returning true the first time `i` is settled.
    #[inline]
    pub(crate) fn take_target(&mut self, i: usize) -> bool {
        if self.targeted[i] == self.generation {
            // Generation is >= 1 after `begin`, so 0 can never collide.
            self.targeted[i] = 0;
            true
        } else {
            false
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, cost: f64, node: NodeId) {
        self.heap.push(QueueEntry { cost, node });
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(f64, NodeId)> {
        self.heap.pop().map(|e| (e.cost, e.node))
    }
}

/// Shortest (quickest) travel time from `source` to `target` at time `t`, or
/// `None` if `target` is unreachable. Allocates a throwaway [`SearchSpace`];
/// hot paths should use [`shortest_travel_time_in`].
pub fn shortest_travel_time(
    network: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    t: TimePoint,
) -> Option<Duration> {
    shortest_travel_time_in(network, source, target, t, &mut SearchSpace::new())
}

/// [`shortest_travel_time`] running inside a caller-provided space.
pub fn shortest_travel_time_in(
    network: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    t: TimePoint,
    space: &mut SearchSpace,
) -> Option<Duration> {
    if source == target {
        return Some(Duration::ZERO);
    }
    space.begin(network.node_count());
    space.update(source.index(), 0.0, 0.0, NO_EDGE);
    space.push(0.0, source);
    while let Some((cost, node)) = space.pop() {
        let i = node.index();
        if space.is_settled(i) || cost > space.dist(i) {
            continue;
        }
        space.settle(i);
        if node == target {
            return Some(Duration::from_secs_f64(cost));
        }
        relax_beta(network, t, space, node, cost);
    }
    None
}

/// Shortest path (node sequence, travel time, length) from `source` to
/// `target` at time `t`, or `None` if unreachable.
pub fn shortest_path(
    network: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    t: TimePoint,
) -> Option<PathResult> {
    shortest_path_in(network, source, target, t, &mut SearchSpace::new())
}

/// [`shortest_path`] running inside a caller-provided space. The returned
/// node sequence is the only allocation.
pub fn shortest_path_in(
    network: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    t: TimePoint,
    space: &mut SearchSpace,
) -> Option<PathResult> {
    space.begin(network.node_count());
    space.update(source.index(), 0.0, 0.0, NO_EDGE);
    space.push(0.0, source);
    let mut reached = source == target;
    while let Some((cost, node)) = space.pop() {
        let i = node.index();
        if space.is_settled(i) || cost > space.dist(i) {
            continue;
        }
        space.settle(i);
        if node == target {
            reached = true;
            break;
        }
        relax_beta(network, t, space, node, cost);
    }
    if !reached {
        return None;
    }

    // Reconstruct the node sequence by walking parent edges back to source.
    let mut nodes = vec![target];
    let mut length_m = 0.0;
    let mut cursor = target;
    while cursor != source {
        let eid = space.parent_edge(cursor.index()).expect("reached node must have a parent edge");
        let edge = network.edge(eid);
        length_m += edge.length_m;
        cursor = edge.from;
        nodes.push(cursor);
    }
    nodes.reverse();

    Some(PathResult {
        travel_time: Duration::from_secs_f64(space.dist(target.index())),
        length_m,
        nodes,
    })
}

/// Travel times from `source` to each node in `targets` at time `t`.
///
/// Runs a single Dijkstra that stops as soon as every reachable target has
/// been settled. Unreachable targets map to `None`.
pub fn one_to_many(
    network: &RoadNetwork,
    source: NodeId,
    targets: &[NodeId],
    t: TimePoint,
) -> Vec<Option<Duration>> {
    one_to_many_in(network, source, targets, t, &mut SearchSpace::new())
}

/// [`one_to_many`] running inside a caller-provided space. Target membership
/// is tracked with generation-stamped marks, so apart from the output vector
/// the query performs no allocation.
pub fn one_to_many_in(
    network: &RoadNetwork,
    source: NodeId,
    targets: &[NodeId],
    t: TimePoint,
    space: &mut SearchSpace,
) -> Vec<Option<Duration>> {
    space.begin(network.node_count());
    let mut remaining = 0usize;
    for &target in targets {
        if space.mark_target(target.index()) {
            remaining += 1;
        }
    }
    space.update(source.index(), 0.0, 0.0, NO_EDGE);
    space.push(0.0, source);
    while remaining > 0 {
        let Some((cost, node)) = space.pop() else { break };
        let i = node.index();
        if space.is_settled(i) || cost > space.dist(i) {
            continue;
        }
        space.settle(i);
        if space.take_target(i) {
            remaining -= 1;
        }
        if remaining > 0 {
            relax_beta(network, t, space, node, cost);
        }
    }
    targets
        .iter()
        .map(|&target| {
            let i = target.index();
            if space.is_settled(i) {
                Some(Duration::from_secs_f64(space.dist(i)))
            } else {
                None
            }
        })
        .collect()
}

/// Travel times from `source` to every node of the network at time `t`
/// (`None` for unreachable nodes).
pub fn one_to_all(network: &RoadNetwork, source: NodeId, t: TimePoint) -> Vec<Option<Duration>> {
    let mut out = vec![None; network.node_count()];
    out[source.index()] = Some(Duration::ZERO);
    for settled in Expansion::new(network, source, t) {
        out[settled.node.index()] = Some(settled.travel_time);
    }
    out
}

/// Relaxes `node`'s out-edges under the temporal weight `β(e, t)` (distance
/// and travel time coincide).
#[inline]
fn relax_beta(
    network: &RoadNetwork,
    t: TimePoint,
    space: &mut SearchSpace,
    node: NodeId,
    base: f64,
) {
    for (eid, edge) in network.out_edges(node) {
        let to = edge.to.index();
        if space.is_settled(to) {
            continue;
        }
        let next = base + network.travel_time(eid, t).as_secs_f64();
        if next < space.dist(to) {
            space.update(to, next, next, eid.0);
            space.push(next, edge.to);
        }
    }
}

/// A node settled by a best-first [`Expansion`], together with its distance
/// from the source under the expansion's weight function and the accumulated
/// *temporal* distance (β-weights), which may differ when a custom weight is
/// in use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Settled {
    /// The settled node.
    pub node: NodeId,
    /// Distance from the source under the expansion's weight function.
    pub weight: f64,
    /// Travel time from the source accumulated along the same tree path.
    pub travel_time: Duration,
}

/// The scratch space an [`Expansion`] runs in: its own, or one borrowed from
/// a caller (e.g. the engine's pool) so repeated expansions don't allocate.
enum SpaceSlot<'a> {
    Owned(SearchSpace),
    Borrowed(&'a mut SearchSpace),
}

impl SpaceSlot<'_> {
    #[inline]
    fn get(&mut self) -> &mut SearchSpace {
        match self {
            SpaceSlot::Owned(space) => space,
            SpaceSlot::Borrowed(space) => space,
        }
    }
}

/// Lazy best-first expansion of the road network from a source node.
///
/// Yields nodes in non-decreasing order of accumulated weight. With the
/// default weight (the temporal edge weight `β(e, t)`) this is plain
/// Dijkstra; Algorithm 2 of the paper swaps in the vehicle-sensitive weight
/// `α(v, e, t)` (Eq. 8) via [`Expansion::with_weight`], so nodes pop in an
/// order that blends travel time with angular distance while the true travel
/// time along the tree path is still tracked for cost computations.
///
/// The `*_in` constructors run the expansion inside a caller-provided
/// [`SearchSpace`] so per-vehicle expansions in the FoodGraph hot loop reuse
/// one set of arrays instead of allocating per vehicle.
pub struct Expansion<'a> {
    network: &'a RoadNetwork,
    t: TimePoint,
    /// Weight of edge `eid` leaving a node settled at weight `w`; `None`
    /// means "use β(e, t)".
    weight_fn: Option<Box<dyn Fn(EdgeId) -> f64 + 'a>>,
    space: SpaceSlot<'a>,
    yielded_source: bool,
    source: NodeId,
}

impl<'a> Expansion<'a> {
    /// Starts a best-first expansion from `source` using the temporal edge
    /// weight `β(e, t)`.
    pub fn new(network: &'a RoadNetwork, source: NodeId, t: TimePoint) -> Self {
        Self::build(network, source, t, None, SpaceSlot::Owned(SearchSpace::new()))
    }

    /// [`Expansion::new`] running inside a caller-provided space.
    pub fn new_in(
        network: &'a RoadNetwork,
        source: NodeId,
        t: TimePoint,
        space: &'a mut SearchSpace,
    ) -> Self {
        Self::build(network, source, t, None, SpaceSlot::Borrowed(space))
    }

    /// Starts a best-first expansion from `source` using a caller-supplied
    /// edge weight (must be non-negative and finite for every edge).
    pub fn with_weight(
        network: &'a RoadNetwork,
        source: NodeId,
        t: TimePoint,
        weight: impl Fn(EdgeId) -> f64 + 'a,
    ) -> Self {
        Self::build(
            network,
            source,
            t,
            Some(Box::new(weight)),
            SpaceSlot::Owned(SearchSpace::new()),
        )
    }

    /// [`Expansion::with_weight`] running inside a caller-provided space.
    pub fn with_weight_in(
        network: &'a RoadNetwork,
        source: NodeId,
        t: TimePoint,
        weight: impl Fn(EdgeId) -> f64 + 'a,
        space: &'a mut SearchSpace,
    ) -> Self {
        Self::build(network, source, t, Some(Box::new(weight)), SpaceSlot::Borrowed(space))
    }

    fn build(
        network: &'a RoadNetwork,
        source: NodeId,
        t: TimePoint,
        weight_fn: Option<Box<dyn Fn(EdgeId) -> f64 + 'a>>,
        mut space: SpaceSlot<'a>,
    ) -> Self {
        let inner = space.get();
        inner.begin(network.node_count());
        inner.update(source.index(), 0.0, 0.0, NO_EDGE);
        inner.push(0.0, source);
        Expansion { network, t, weight_fn, space, yielded_source: false, source }
    }

    fn relax(&mut self, node: NodeId) {
        let space = self.space.get();
        let base_w = space.dist(node.index());
        let base_t = space.time_of(node.index());
        for (eid, edge) in self.network.out_edges(node) {
            let to = edge.to.index();
            if space.is_settled(to) {
                continue;
            }
            let w = base_w + edge_weight(self.network, &self.weight_fn, self.t, eid);
            if w < space.dist(to) {
                let time = base_t + self.network.travel_time(eid, self.t).as_secs_f64();
                space.update(to, w, time, eid.0);
                space.push(w, edge.to);
            }
        }
    }
}

#[inline]
fn edge_weight(
    network: &RoadNetwork,
    weight_fn: &Option<Box<dyn Fn(EdgeId) -> f64 + '_>>,
    t: TimePoint,
    eid: EdgeId,
) -> f64 {
    match weight_fn {
        Some(f) => {
            let w = f(eid);
            debug_assert!(w.is_finite() && w >= 0.0, "custom edge weight must be non-negative");
            w
        }
        None => network.travel_time(eid, t).as_secs_f64(),
    }
}

impl Iterator for Expansion<'_> {
    type Item = Settled;

    fn next(&mut self) -> Option<Settled> {
        if !self.yielded_source {
            self.yielded_source = true;
            self.space.get().settle(self.source.index());
            // Relax the source's out-edges before yielding it so that the
            // iterator is usable even if the caller stops immediately after.
            let source = self.source;
            self.relax(source);
            return Some(Settled { node: self.source, weight: 0.0, travel_time: Duration::ZERO });
        }
        loop {
            let space = self.space.get();
            let (cost, node) = space.pop()?;
            let i = node.index();
            if space.is_settled(i) || cost > space.dist(i) {
                continue;
            }
            space.settle(i);
            self.relax(node);
            let travel_time = Duration::from_secs_f64(self.space.get().time_of(node.index()));
            return Some(Settled { node, weight: cost, travel_time });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::{CongestionProfile, RoadClass};
    use crate::geo::GeoPoint;
    use crate::graph::RoadNetworkBuilder;

    /// A 2x3 grid with uniform 1000 m local edges (free flow ~144.9 s each).
    fn grid_2x3() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new().congestion(CongestionProfile::free_flow());
        let mut ids = Vec::new();
        for r in 0..2 {
            for c in 0..3 {
                ids.push(b.add_node(GeoPoint::new(r as f64 * 0.009, c as f64 * 0.009)));
            }
        }
        let at = |r: usize, c: usize| ids[r * 3 + c];
        for r in 0..2 {
            for c in 0..3 {
                if c + 1 < 3 {
                    b.add_bidirectional(at(r, c), at(r, c + 1), 1000.0, RoadClass::Local);
                }
                if r + 1 < 2 {
                    b.add_bidirectional(at(r, c), at(r + 1, c), 1000.0, RoadClass::Local);
                }
            }
        }
        b.build()
    }

    fn edge_secs() -> f64 {
        1000.0 / RoadClass::Local.free_flow_speed_mps()
    }

    #[test]
    fn travel_time_matches_manhattan_distance_on_grid() {
        let net = grid_2x3();
        let t = TimePoint::from_hms(10, 0, 0);
        let d = shortest_travel_time(&net, NodeId(0), NodeId(5), t).unwrap();
        assert!((d.as_secs_f64() - 3.0 * edge_secs()).abs() < 1e-6);
    }

    #[test]
    fn source_equals_target_is_zero() {
        let net = grid_2x3();
        let t = TimePoint::MIDNIGHT;
        assert_eq!(shortest_travel_time(&net, NodeId(2), NodeId(2), t), Some(Duration::ZERO));
    }

    #[test]
    fn path_reconstruction_is_consistent() {
        let net = grid_2x3();
        let t = TimePoint::from_hms(8, 0, 0);
        let path = shortest_path(&net, NodeId(0), NodeId(5), t).unwrap();
        assert_eq!(path.nodes.first(), Some(&NodeId(0)));
        assert_eq!(path.nodes.last(), Some(&NodeId(5)));
        assert_eq!(path.nodes.len(), 4);
        assert!((path.length_m - 3000.0).abs() < 1e-6);
        // Path travel time must equal the sum of its edge travel times.
        let mut total = 0.0;
        for pair in path.nodes.windows(2) {
            let (eid, _) = net
                .out_edges(pair[0])
                .find(|(_, e)| e.to == pair[1])
                .expect("consecutive path nodes are adjacent");
            total += net.travel_time(eid, t).as_secs_f64();
        }
        assert!((total - path.travel_time.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_returns_none() {
        // Two disconnected nodes.
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.1));
        let d = b.add_node(GeoPoint::new(0.0, 0.2));
        b.add_edge(a, c, 100.0, RoadClass::Local);
        let net = b.build();
        assert_eq!(shortest_travel_time(&net, a, d, TimePoint::MIDNIGHT), None);
        assert!(shortest_path(&net, a, d, TimePoint::MIDNIGHT).is_none());
    }

    #[test]
    fn one_to_many_matches_individual_queries() {
        let net = grid_2x3();
        let t = TimePoint::from_hms(13, 0, 0);
        let targets = [NodeId(1), NodeId(4), NodeId(5), NodeId(0)];
        let batch = one_to_many(&net, NodeId(0), &targets, t);
        for (i, &target) in targets.iter().enumerate() {
            let single = shortest_travel_time(&net, NodeId(0), target, t);
            assert_eq!(batch[i], single, "mismatch for {target}");
        }
    }

    #[test]
    fn one_to_many_handles_duplicate_targets() {
        let net = grid_2x3();
        let t = TimePoint::from_hms(13, 0, 0);
        let targets = [NodeId(4), NodeId(4), NodeId(0), NodeId(0)];
        let batch = one_to_many(&net, NodeId(0), &targets, t);
        assert_eq!(batch[0], batch[1]);
        assert_eq!(batch[2], Some(Duration::ZERO));
        assert_eq!(batch[3], Some(Duration::ZERO));
    }

    #[test]
    fn one_to_all_covers_connected_grid() {
        let net = grid_2x3();
        let d = one_to_all(&net, NodeId(0), TimePoint::MIDNIGHT);
        assert_eq!(d.len(), 6);
        assert!(d.iter().all(|x| x.is_some()));
        assert_eq!(d[0], Some(Duration::ZERO));
    }

    #[test]
    fn search_space_is_reusable_across_queries() {
        let net = grid_2x3();
        let t = TimePoint::from_hms(9, 0, 0);
        let mut space = SearchSpace::new();
        // Interleave different query types in one space; results must match
        // the allocating reference implementations every time.
        for round in 0..3 {
            for s in 0..net.node_count() {
                let source = NodeId(s as u32);
                let target = NodeId(((s + round + 1) % net.node_count()) as u32);
                assert_eq!(
                    shortest_travel_time_in(&net, source, target, t, &mut space),
                    shortest_travel_time(&net, source, target, t),
                    "round {round}, {source}->{target}"
                );
                let targets: Vec<NodeId> = net.node_ids().collect();
                assert_eq!(
                    one_to_many_in(&net, source, &targets, t, &mut space),
                    one_to_many(&net, source, &targets, t)
                );
                assert_eq!(
                    shortest_path_in(&net, source, target, t, &mut space),
                    shortest_path(&net, source, target, t)
                );
            }
        }
        assert_eq!(space.node_capacity(), net.node_count());
    }

    #[test]
    fn expansion_in_borrowed_space_matches_owned() {
        let net = grid_2x3();
        let t = TimePoint::MIDNIGHT;
        let mut space = SearchSpace::new();
        for _ in 0..2 {
            let borrowed: Vec<Settled> =
                Expansion::new_in(&net, NodeId(0), t, &mut space).collect();
            let owned: Vec<Settled> = Expansion::new(&net, NodeId(0), t).collect();
            assert_eq!(borrowed, owned);
        }
    }

    #[test]
    fn expansion_yields_nodes_in_nondecreasing_order() {
        let net = grid_2x3();
        let weights: Vec<f64> =
            Expansion::new(&net, NodeId(0), TimePoint::MIDNIGHT).map(|s| s.weight).collect();
        assert_eq!(weights.len(), 6);
        for pair in weights.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
    }

    #[test]
    fn expansion_with_custom_weight_changes_order_but_keeps_travel_time() {
        let net = grid_2x3();
        let t = TimePoint::MIDNIGHT;
        // A weight that strongly prefers edges leading to higher node ids.
        let expansion = Expansion::with_weight(&net, NodeId(0), t, |eid| {
            let e = net.edge(eid);
            1000.0 - f64::from(e.to.0)
        });
        for settled in expansion {
            if settled.node != NodeId(0) {
                // Travel time along the chosen tree path can never beat the
                // true shortest travel time.
                let best = shortest_travel_time(&net, NodeId(0), settled.node, t).unwrap();
                assert!(settled.travel_time.as_secs_f64() + 1e-9 >= best.as_secs_f64());
            }
        }
    }

    #[test]
    fn congestion_lengthens_peak_paths() {
        let mut b = RoadNetworkBuilder::new().congestion(CongestionProfile::metropolitan());
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.02));
        b.add_bidirectional(a, c, 2000.0, RoadClass::Arterial);
        let net = b.build();
        let night = shortest_travel_time(&net, a, c, TimePoint::from_hms(3, 0, 0)).unwrap();
        let dinner = shortest_travel_time(&net, a, c, TimePoint::from_hms(20, 0, 0)).unwrap();
        assert!(dinner > night);
    }
}
