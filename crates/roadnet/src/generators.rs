//! Synthetic city generators.
//!
//! The paper's road networks are OpenStreetMap extracts of three Indian
//! cities (39k–460k edges) that ship with the proprietary Swiggy dataset.
//! These generators produce networks with the structural properties the
//! algorithms care about — planar-ish connectivity, heterogeneous road
//! classes, realistic edge lengths, geographic coordinates — at a size that
//! can be simulated on one machine:
//!
//! * [`GridCityBuilder`] — a Manhattan-style grid; deterministic, handy for
//!   tests and worked examples.
//! * [`RandomCityBuilder`] — a random geometric graph: nodes scattered in a
//!   disc, each connected to its nearest neighbours, components stitched
//!   together so the network is strongly connected, arterial "ring + spoke"
//!   roads overlaid to create the fast/slow route structure that makes
//!   time-dependent routing interesting.

use crate::congestion::{CongestionProfile, RoadClass};
use crate::geo::GeoPoint;
use crate::graph::{RoadNetwork, RoadNetworkBuilder};
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Degrees of latitude per meter (approximately, near the equator-to-mid
/// latitudes where our synthetic cities live).
const DEG_PER_METER_LAT: f64 = 1.0 / 111_195.0;

/// Builder for a rectangular grid city.
///
/// Nodes form an `rows × cols` lattice with a fixed spacing; all horizontal
/// and vertical neighbours are connected bidirectionally. Every `major_every`
/// row/column is an arterial, the rest are local streets.
#[derive(Clone, Debug)]
pub struct GridCityBuilder {
    rows: usize,
    cols: usize,
    spacing_m: f64,
    major_every: usize,
    origin: GeoPoint,
    congestion: CongestionProfile,
}

impl GridCityBuilder {
    /// Creates a grid with the given number of rows and columns and default
    /// spacing of 250 m.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        GridCityBuilder {
            rows,
            cols,
            spacing_m: 250.0,
            major_every: 4,
            origin: GeoPoint::new(12.90, 77.55),
            congestion: CongestionProfile::metropolitan(),
        }
    }

    /// Sets the spacing between adjacent intersections, in meters.
    pub fn spacing_m(mut self, spacing: f64) -> Self {
        assert!(spacing.is_finite() && spacing > 0.0, "spacing must be positive");
        self.spacing_m = spacing;
        self
    }

    /// Every `n`-th row/column becomes an arterial road (0 disables
    /// arterials).
    pub fn major_every(mut self, n: usize) -> Self {
        self.major_every = n;
        self
    }

    /// Sets the geographic origin (south-west corner) of the grid.
    pub fn origin(mut self, origin: GeoPoint) -> Self {
        self.origin = origin;
        self
    }

    /// Sets the congestion profile of the generated network.
    pub fn congestion(mut self, profile: CongestionProfile) -> Self {
        self.congestion = profile;
        self
    }

    /// Node id of the intersection at `(row, col)` in the generated network.
    pub fn node_at(&self, row: usize, col: usize) -> NodeId {
        assert!(row < self.rows && col < self.cols, "grid coordinates out of range");
        NodeId::from_index(row * self.cols + col)
    }

    /// Builds the road network.
    pub fn build(&self) -> RoadNetwork {
        let mut builder = RoadNetworkBuilder::new().congestion(self.congestion.clone());
        let deg_per_m_lon = DEG_PER_METER_LAT / self.origin.lat.to_radians().cos().max(0.2);

        for r in 0..self.rows {
            for c in 0..self.cols {
                let lat = self.origin.lat + r as f64 * self.spacing_m * DEG_PER_METER_LAT;
                let lon = self.origin.lon + c as f64 * self.spacing_m * deg_per_m_lon;
                builder.add_node(GeoPoint::new(lat, lon));
            }
        }

        let class_of = |line: usize| {
            if self.major_every > 0 && line % self.major_every == 0 {
                RoadClass::Arterial
            } else {
                RoadClass::Local
            }
        };
        let at = |r: usize, c: usize| NodeId::from_index(r * self.cols + c);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c + 1 < self.cols {
                    builder.add_bidirectional(at(r, c), at(r, c + 1), self.spacing_m, class_of(r));
                }
                if r + 1 < self.rows {
                    builder.add_bidirectional(at(r, c), at(r + 1, c), self.spacing_m, class_of(c));
                }
            }
        }
        builder.build()
    }
}

/// Builder for a random-geometric city.
///
/// Nodes are scattered uniformly in a disc of radius `radius_m` around the
/// city centre. Each node connects to its `neighbours` nearest nodes with
/// collector/local streets; a ring of arterials plus radial spokes is
/// overlaid; finally, any remaining weakly connected components are stitched
/// together so every node can reach every other.
#[derive(Clone, Debug)]
pub struct RandomCityBuilder {
    nodes: usize,
    radius_m: f64,
    neighbours: usize,
    seed: u64,
    center: GeoPoint,
    congestion: CongestionProfile,
    arterial_spokes: usize,
}

impl RandomCityBuilder {
    /// Creates a builder for a city with `nodes` intersections and defaults
    /// sized like a mid-town delivery zone (radius 6 km, 3 nearest
    /// neighbours, 6 arterial spokes).
    ///
    /// # Panics
    /// Panics if `nodes < 2`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 2, "a city needs at least two intersections");
        RandomCityBuilder {
            nodes,
            radius_m: 6_000.0,
            neighbours: 3,
            seed: 42,
            center: GeoPoint::new(12.9716, 77.5946),
            congestion: CongestionProfile::metropolitan(),
            arterial_spokes: 6,
        }
    }

    /// Sets the RNG seed, making the generated city reproducible.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the city radius in meters.
    pub fn radius_m(mut self, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 100.0, "radius must exceed 100 m");
        self.radius_m = radius;
        self
    }

    /// Sets how many nearest neighbours each node connects to.
    pub fn neighbours(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one neighbour per node");
        self.neighbours = k;
        self
    }

    /// Sets the number of arterial spokes radiating from the centre.
    pub fn arterial_spokes(mut self, spokes: usize) -> Self {
        self.arterial_spokes = spokes;
        self
    }

    /// Sets the geographic centre of the city.
    pub fn center(mut self, center: GeoPoint) -> Self {
        self.center = center;
        self
    }

    /// Sets the congestion profile of the generated network.
    pub fn congestion(mut self, profile: CongestionProfile) -> Self {
        self.congestion = profile;
        self
    }

    /// Builds the road network.
    pub fn build(&self) -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = RoadNetworkBuilder::new().congestion(self.congestion.clone());
        let deg_per_m_lon = DEG_PER_METER_LAT / self.center.lat.to_radians().cos().max(0.2);

        // Scatter nodes uniformly in a disc (rejection-free via sqrt radius).
        let mut positions = Vec::with_capacity(self.nodes);
        for _ in 0..self.nodes {
            let angle = rng.random_range(0.0..std::f64::consts::TAU);
            let r = self.radius_m * rng.random_range(0.0_f64..1.0).sqrt();
            let lat = self.center.lat + r * angle.sin() * DEG_PER_METER_LAT;
            let lon = self.center.lon + r * angle.cos() * deg_per_m_lon;
            let p = GeoPoint::new(lat, lon);
            positions.push(p);
            builder.add_node(p);
        }

        let mut dsu = DisjointSet::new(self.nodes);
        let mut edge_exists = std::collections::HashSet::new();
        let add_street = |builder: &mut RoadNetworkBuilder,
                          dsu: &mut DisjointSet,
                          edge_exists: &mut std::collections::HashSet<(usize, usize)>,
                          a: usize,
                          b: usize,
                          class: RoadClass| {
            if a == b {
                return;
            }
            let key = (a.min(b), a.max(b));
            if !edge_exists.insert(key) {
                return;
            }
            let length = positions[a].distance_m(positions[b]).max(20.0) * 1.2;
            builder.add_bidirectional(NodeId::from_index(a), NodeId::from_index(b), length, class);
            dsu.union(a, b);
        };

        // k-nearest-neighbour streets.
        for i in 0..self.nodes {
            let mut by_distance: Vec<(f64, usize)> = (0..self.nodes)
                .filter(|&j| j != i)
                .map(|j| (positions[i].distance_m(positions[j]), j))
                .collect();
            by_distance.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are not NaN"));
            for &(_, j) in by_distance.iter().take(self.neighbours) {
                let class = if rng.random_range(0.0..1.0) < 0.25 {
                    RoadClass::Collector
                } else {
                    RoadClass::Local
                };
                add_street(&mut builder, &mut dsu, &mut edge_exists, i, j, class);
            }
        }

        // Arterial spokes: connect the centre-most node outwards along
        // `arterial_spokes` headings by chaining the nearest node in an
        // angular sector at increasing radii.
        if self.arterial_spokes > 0 && self.nodes > self.arterial_spokes * 2 {
            let center_node = positions
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.distance_m(self.center)
                        .partial_cmp(&b.1.distance_m(self.center))
                        .expect("distances are not NaN")
                })
                .map(|(i, _)| i)
                .expect("at least one node");
            for spoke in 0..self.arterial_spokes {
                let heading = spoke as f64 / self.arterial_spokes as f64 * std::f64::consts::TAU;
                let mut previous = center_node;
                let steps = 6usize;
                for step in 1..=steps {
                    let target_r = self.radius_m * step as f64 / steps as f64;
                    let target = GeoPoint::new(
                        self.center.lat + target_r * heading.sin() * DEG_PER_METER_LAT,
                        self.center.lon + target_r * heading.cos() * deg_per_m_lon,
                    );
                    let nearest = positions
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != previous)
                        .min_by(|a, b| {
                            a.1.distance_m(target)
                                .partial_cmp(&b.1.distance_m(target))
                                .expect("distances are not NaN")
                        })
                        .map(|(i, _)| i)
                        .expect("at least two nodes");
                    add_street(
                        &mut builder,
                        &mut dsu,
                        &mut edge_exists,
                        previous,
                        nearest,
                        RoadClass::Arterial,
                    );
                    previous = nearest;
                }
            }
        }

        // Stitch remaining components together through their closest pairs so
        // the network is connected (bidirectional edges ⇒ strongly connected).
        loop {
            let roots: Vec<usize> = (0..self.nodes).filter(|&i| dsu.find(i) == i).collect();
            if roots.len() <= 1 {
                break;
            }
            let main_root = dsu.find(0);
            let mut best: Option<(f64, usize, usize)> = None;
            for i in 0..self.nodes {
                if dsu.find(i) != main_root {
                    continue;
                }
                for j in 0..self.nodes {
                    if dsu.find(j) == main_root {
                        continue;
                    }
                    let d = positions[i].distance_m(positions[j]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, i, j));
                    }
                }
            }
            let (_, i, j) = best.expect("disconnected component has a closest pair");
            add_street(&mut builder, &mut dsu, &mut edge_exists, i, j, RoadClass::Collector);
        }

        builder.build()
    }
}

/// Minimal union-find used to keep the random city connected.
struct DisjointSet {
    parent: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet { parent: (0..n).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::timeofday::TimePoint;

    #[test]
    fn grid_has_expected_size() {
        let net = GridCityBuilder::new(4, 5).build();
        assert_eq!(net.node_count(), 20);
        // Each interior adjacency contributes two directed edges.
        let undirected = 4 * 4 + 3 * 5; // horizontal + vertical adjacencies
        assert_eq!(net.edge_count(), undirected * 2);
    }

    #[test]
    fn grid_node_at_maps_to_lattice() {
        let b = GridCityBuilder::new(3, 4);
        let net = b.build();
        let n = b.node_at(2, 3);
        assert_eq!(n, NodeId(11));
        assert!(net.position(n).lat > net.position(b.node_at(0, 3)).lat);
    }

    #[test]
    fn grid_is_strongly_connected() {
        let net = GridCityBuilder::new(5, 5).build();
        let d = dijkstra::one_to_all(&net, NodeId(0), TimePoint::MIDNIGHT);
        assert!(d.iter().all(Option::is_some));
        let back = dijkstra::one_to_all(&net, NodeId(24), TimePoint::MIDNIGHT);
        assert!(back.iter().all(Option::is_some));
    }

    #[test]
    fn random_city_is_connected_and_reproducible() {
        let a = RandomCityBuilder::new(120).seed(9).build();
        let b = RandomCityBuilder::new(120).seed(9).build();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let d = dijkstra::one_to_all(&a, NodeId(0), TimePoint::from_hms(12, 0, 0));
        assert!(d.iter().all(Option::is_some), "random city must be connected");
    }

    #[test]
    fn random_city_seeds_differ() {
        let a = RandomCityBuilder::new(80).seed(1).build();
        let b = RandomCityBuilder::new(80).seed(2).build();
        let pos_a: Vec<_> = a.node_ids().map(|n| a.position(n)).collect();
        let pos_b: Vec<_> = b.node_ids().map(|n| b.position(n)).collect();
        assert_ne!(pos_a, pos_b);
    }

    #[test]
    fn random_city_contains_arterials() {
        let net = RandomCityBuilder::new(150).seed(3).build();
        let arterials =
            net.edge_ids().filter(|&e| net.edge(e).class == RoadClass::Arterial).count();
        assert!(arterials > 0, "expected arterial spokes");
    }

    #[test]
    fn node_positions_stay_within_radius() {
        let builder = RandomCityBuilder::new(100).seed(5).radius_m(3_000.0);
        let net = builder.build();
        for n in net.node_ids() {
            let d = net.position(n).distance_m(builder.center);
            assert!(d <= 3_100.0, "node {n} at distance {d}");
        }
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be positive")]
    fn zero_grid_rejected() {
        let _ = GridCityBuilder::new(0, 3);
    }
}
