//! Hub labelling distance oracle.
//!
//! The paper indexes shortest-path queries with hierarchical hub labeling
//! (Delling et al., reference [18]) so that the thousands of `SP(u, v, t)`
//! evaluations per accumulation window are cheap. We reproduce the same
//! *interface* — an exact distance oracle with fast queries — using **pruned
//! landmark labelling** (Akiba et al. style): breadth of implementation is
//! smaller than full HHL but the labels are exact and query time is
//! `O(|L(u)| + |L(v)|)` with a merge-join over sorted labels.
//!
//! Labels are built for a fixed hour slot (edge weights are constant within a
//! slot), so the [`crate::ShortestPathEngine`] keeps one lazily-built
//! `HubLabelIndex` per slot.

use crate::graph::RoadNetwork;
use crate::ids::NodeId;
use crate::timeofday::{Duration, HourSlot, TimePoint};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A single label entry: the distance from/to a hub node.
#[derive(Clone, Copy, Debug, PartialEq)]
struct LabelEntry {
    hub: u32,
    dist: f64,
}

/// Exact hub-label index for one hour slot of a road network.
///
/// Two label sets are kept per node: `out_labels[u]` holds distances from `u`
/// to hubs (forward search), `in_labels[u]` holds distances from hubs to `u`
/// (backward search on the reverse graph); a query merges the source's out
/// labels with the target's in labels.
#[derive(Clone, Debug)]
pub struct HubLabelIndex {
    slot: HourSlot,
    out_labels: Vec<Vec<LabelEntry>>,
    in_labels: Vec<Vec<LabelEntry>>,
}

impl HubLabelIndex {
    /// Builds the index for `slot` by pruned labelling over nodes ordered by
    /// descending degree (a cheap but effective importance order for road
    /// networks).
    pub fn build(network: &RoadNetwork, slot: HourSlot) -> Self {
        let n = network.node_count();
        let mut order: Vec<NodeId> = network.node_ids().collect();
        order.sort_by_key(|&u| std::cmp::Reverse(network.out_degree(u)));

        let mut index =
            HubLabelIndex { slot, out_labels: vec![Vec::new(); n], in_labels: vec![Vec::new(); n] };

        // Reverse adjacency (needed for the backward pruned search).
        let mut reverse: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
        let t = slot_time(slot);
        for u in network.node_ids() {
            for (eid, edge) in network.out_edges(u) {
                reverse[edge.to.index()].push((u, network.travel_time(eid, t).as_secs_f64()));
            }
        }

        for &hub in &order {
            index.pruned_search(network, hub, t, Direction::Forward, &reverse);
            index.pruned_search(network, hub, t, Direction::Backward, &reverse);
        }

        for labels in index.out_labels.iter_mut().chain(index.in_labels.iter_mut()) {
            labels.sort_by_key(|e| e.hub);
        }
        index
    }

    /// The hour slot this index was built for.
    pub fn slot(&self) -> HourSlot {
        self.slot
    }

    /// Exact shortest travel time from `source` to `target`, or `None` if
    /// unreachable.
    pub fn travel_time(&self, source: NodeId, target: NodeId) -> Option<Duration> {
        if source == target {
            return Some(Duration::ZERO);
        }
        let a = &self.out_labels[source.index()];
        let b = &self.in_labels[target.index()];
        let mut best = f64::INFINITY;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].hub.cmp(&b[j].hub) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    let d = a[i].dist + b[j].dist;
                    if d < best {
                        best = d;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        if best.is_finite() {
            Some(Duration::from_secs_f64(best))
        } else {
            None
        }
    }

    /// Average number of label entries per node (both directions), a measure
    /// of index size used by the benchmarks.
    pub fn average_label_size(&self) -> f64 {
        let total: usize =
            self.out_labels.iter().map(Vec::len).chain(self.in_labels.iter().map(Vec::len)).sum();
        total as f64 / (2.0 * self.out_labels.len() as f64)
    }

    /// Pruned Dijkstra from `hub`, adding label entries at every node whose
    /// distance is not already covered by previously inserted hubs.
    fn pruned_search(
        &mut self,
        network: &RoadNetwork,
        hub: NodeId,
        t: TimePoint,
        direction: Direction,
        reverse: &[Vec<(NodeId, f64)>],
    ) {
        let n = network.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = BinaryHeap::new();
        dist[hub.index()] = 0.0;
        heap.push(HeapEntry { cost: 0.0, node: hub });

        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if cost > dist[node.index()] {
                continue;
            }
            // Prune: if existing labels already certify a distance <= cost
            // between hub and node, no label is needed here and the search
            // does not continue below this node. The hub itself is never
            // pruned — its (hub, 0) self-label anchors both directions.
            if node != hub {
                let covered = match direction {
                    Direction::Forward => self.query_partial(hub, node),
                    Direction::Backward => self.query_partial(node, hub),
                };
                if covered <= cost + 1e-9 {
                    continue;
                }
            }
            match direction {
                Direction::Forward => {
                    self.in_labels[node.index()].push(LabelEntry { hub: hub.0, dist: cost })
                }
                Direction::Backward => {
                    self.out_labels[node.index()].push(LabelEntry { hub: hub.0, dist: cost })
                }
            }
            match direction {
                Direction::Forward => {
                    for (eid, edge) in network.out_edges(node) {
                        let next = cost + network.travel_time(eid, t).as_secs_f64();
                        if next < dist[edge.to.index()] {
                            dist[edge.to.index()] = next;
                            heap.push(HeapEntry { cost: next, node: edge.to });
                        }
                    }
                }
                Direction::Backward => {
                    for &(pred, w) in &reverse[node.index()] {
                        let next = cost + w;
                        if next < dist[pred.index()] {
                            dist[pred.index()] = next;
                            heap.push(HeapEntry { cost: next, node: pred });
                        }
                    }
                }
            }
        }
    }

    /// Distance certified by labels inserted so far (labels are unsorted
    /// during construction, so this is a hash-free nested scan over the two
    /// usually-short label vectors).
    fn query_partial(&self, source: NodeId, target: NodeId) -> f64 {
        if source == target {
            return 0.0;
        }
        let a = &self.out_labels[source.index()];
        let b = &self.in_labels[target.index()];
        let mut best = f64::INFINITY;
        for ea in a {
            for eb in b {
                if ea.hub == eb.hub {
                    let d = ea.dist + eb.dist;
                    if d < best {
                        best = d;
                    }
                }
            }
        }
        best
    }
}

fn slot_time(slot: HourSlot) -> TimePoint {
    TimePoint::from_hms(u32::from(slot.hour()), 30, 0)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Backward,
}

#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("costs are never NaN")
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::generators::{GridCityBuilder, RandomCityBuilder};

    fn assert_matches_dijkstra(network: &RoadNetwork, slot: HourSlot) {
        let index = HubLabelIndex::build(network, slot);
        let t = slot_time(slot);
        let nodes: Vec<NodeId> = network.node_ids().collect();
        // Check a deterministic sample of pairs against plain Dijkstra.
        for (i, &s) in nodes.iter().enumerate().step_by(3) {
            let reference = dijkstra::one_to_all(network, s, t);
            for (j, &g) in nodes.iter().enumerate().step_by(4) {
                let expected = reference[j];
                let got = index.travel_time(s, g);
                match (expected, got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert!(
                            (a.as_secs_f64() - b.as_secs_f64()).abs() < 1e-6,
                            "pair ({i},{j}): dijkstra {a:?} vs labels {b:?}"
                        );
                    }
                    other => panic!("pair ({i},{j}): reachability mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn labels_match_dijkstra_on_grid() {
        let net = GridCityBuilder::new(5, 5).build();
        assert_matches_dijkstra(&net, HourSlot::new(12));
    }

    #[test]
    fn labels_match_dijkstra_on_random_city() {
        let net = RandomCityBuilder::new(60).seed(7).build();
        assert_matches_dijkstra(&net, HourSlot::new(20));
    }

    #[test]
    fn same_node_query_is_zero() {
        let net = GridCityBuilder::new(3, 3).build();
        let index = HubLabelIndex::build(&net, HourSlot::new(0));
        assert_eq!(index.travel_time(NodeId(4), NodeId(4)), Some(Duration::ZERO));
    }

    #[test]
    fn label_size_is_reported() {
        let net = GridCityBuilder::new(4, 4).build();
        let index = HubLabelIndex::build(&net, HourSlot::new(9));
        assert!(index.average_label_size() >= 1.0);
    }

    #[test]
    fn disconnected_nodes_are_unreachable() {
        use crate::congestion::RoadClass;
        use crate::geo::GeoPoint;
        use crate::graph::RoadNetworkBuilder;
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.01));
        let lonely = b.add_node(GeoPoint::new(1.0, 1.0));
        b.add_bidirectional(a, c, 500.0, RoadClass::Local);
        let net = b.build();
        let index = HubLabelIndex::build(&net, HourSlot::new(12));
        assert_eq!(index.travel_time(a, lonely), None);
        assert!(index.travel_time(a, c).is_some());
    }
}
