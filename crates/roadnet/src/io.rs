//! Compact binary snapshots of road networks.
//!
//! Generating a large random city (and especially building hub labels over
//! it) is much slower than reading it back from disk, so the experiment
//! harness snapshots generated networks. The format is a small hand-rolled
//! binary codec built on the [`bytes`] crate: a magic number, a version, the
//! node table (lat/lon), the edge table (endpoints, length, class) and the
//! congestion table.

use crate::congestion::{CongestionProfile, RoadClass};
use crate::geo::GeoPoint;
use crate::graph::{RoadNetwork, RoadNetworkBuilder};
use crate::ids::NodeId;
use crate::timeofday::HourSlot;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::path::Path;

/// Magic number identifying a FoodMatch road-network snapshot.
const MAGIC: u32 = 0x464D_524E; // "FMRN"
/// Current snapshot format version.
const VERSION: u16 = 1;

/// Errors that can occur while decoding a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The buffer is too short or structurally truncated.
    Truncated,
    /// The magic number or version did not match.
    BadHeader {
        /// The magic value found in the buffer.
        magic: u32,
        /// The version found in the buffer.
        version: u16,
    },
    /// An enum discriminant or index was out of range.
    Corrupt(&'static str),
    /// An underlying filesystem error.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot buffer is truncated"),
            SnapshotError::BadHeader { magic, version } => {
                write!(f, "not a road-network snapshot (magic {magic:#x}, version {version})")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(value: std::io::Error) -> Self {
        SnapshotError::Io(value)
    }
}

/// Serialises a road network into a compact binary snapshot.
pub fn to_bytes(network: &RoadNetwork) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(32 + network.node_count() * 16 + network.edge_count() * 24);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);

    buf.put_u32(network.node_count() as u32);
    for node in network.node_ids() {
        let p = network.position(node);
        buf.put_f64(p.lat);
        buf.put_f64(p.lon);
    }

    buf.put_u32(network.edge_count() as u32);
    for edge_id in network.edge_ids() {
        let e = network.edge(edge_id);
        buf.put_u32(e.from.0);
        buf.put_u32(e.to.0);
        buf.put_f64(e.length_m);
        buf.put_u8(class_to_u8(e.class));
    }

    for class in RoadClass::ALL {
        for slot in HourSlot::all() {
            buf.put_f64(network.congestion().multiplier(class, slot));
        }
    }
    buf.freeze()
}

/// Reconstructs a road network from a snapshot produced by [`to_bytes`].
pub fn from_bytes(mut data: &[u8]) -> Result<RoadNetwork, SnapshotError> {
    if data.remaining() < 6 {
        return Err(SnapshotError::Truncated);
    }
    let magic = data.get_u32();
    let version = data.get_u16();
    if magic != MAGIC || version != VERSION {
        return Err(SnapshotError::BadHeader { magic, version });
    }

    if data.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let node_count = data.get_u32() as usize;
    if data.remaining() < node_count * 16 {
        return Err(SnapshotError::Truncated);
    }
    let mut builder = RoadNetworkBuilder::new();
    for _ in 0..node_count {
        let lat = data.get_f64();
        let lon = data.get_f64();
        builder.add_node(GeoPoint::new(lat, lon));
    }

    if data.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let edge_count = data.get_u32() as usize;
    // Each edge record is 4 + 4 + 8 + 1 = 17 bytes.
    if data.remaining() < edge_count * 17 {
        return Err(SnapshotError::Truncated);
    }
    for _ in 0..edge_count {
        let from = data.get_u32();
        let to = data.get_u32();
        let length = data.get_f64();
        let class = class_from_u8(data.get_u8())?;
        if from as usize >= node_count || to as usize >= node_count {
            return Err(SnapshotError::Corrupt("edge endpoint out of range"));
        }
        builder.add_edge(NodeId(from), NodeId(to), length, class);
    }

    let table_len = 3 * HourSlot::COUNT * 8;
    if data.remaining() < table_len {
        return Err(SnapshotError::Truncated);
    }
    let mut table = [[1.0_f64; HourSlot::COUNT]; 3];
    for row in table.iter_mut() {
        for cell in row.iter_mut() {
            *cell = data.get_f64();
        }
    }
    Ok(builder.congestion(CongestionProfile::from_table(table)).build())
}

/// Writes a snapshot of `network` to `path`.
pub fn save(network: &RoadNetwork, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    std::fs::write(path, to_bytes(network))?;
    Ok(())
}

/// Loads a snapshot previously written by [`save`].
pub fn load(path: impl AsRef<Path>) -> Result<RoadNetwork, SnapshotError> {
    let data = std::fs::read(path)?;
    from_bytes(&data)
}

fn class_to_u8(class: RoadClass) -> u8 {
    match class {
        RoadClass::Arterial => 0,
        RoadClass::Collector => 1,
        RoadClass::Local => 2,
    }
}

fn class_from_u8(value: u8) -> Result<RoadClass, SnapshotError> {
    match value {
        0 => Ok(RoadClass::Arterial),
        1 => Ok(RoadClass::Collector),
        2 => Ok(RoadClass::Local),
        _ => Err(SnapshotError::Corrupt("unknown road class")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GridCityBuilder, RandomCityBuilder};
    use crate::timeofday::TimePoint;

    fn assert_networks_equal(a: &RoadNetwork, b: &RoadNetwork) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for n in a.node_ids() {
            assert_eq!(a.position(n), b.position(n));
        }
        for e in a.edge_ids() {
            assert_eq!(a.edge(e), b.edge(e));
        }
        for slot in HourSlot::all() {
            for class in RoadClass::ALL {
                assert_eq!(
                    a.congestion().multiplier(class, slot),
                    b.congestion().multiplier(class, slot)
                );
            }
        }
    }

    #[test]
    fn roundtrip_preserves_grid() {
        let net = GridCityBuilder::new(4, 4).build();
        let decoded = from_bytes(&to_bytes(&net)).unwrap();
        assert_networks_equal(&net, &decoded);
    }

    #[test]
    fn roundtrip_preserves_random_city_travel_times() {
        let net = RandomCityBuilder::new(60).seed(11).build();
        let decoded = from_bytes(&to_bytes(&net)).unwrap();
        assert_networks_equal(&net, &decoded);
        let t = TimePoint::from_hms(19, 0, 0);
        for e in net.edge_ids().take(20) {
            assert_eq!(net.travel_time(e, t), decoded.travel_time(e, t));
        }
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let net = GridCityBuilder::new(3, 5).build();
        let dir = std::env::temp_dir().join("foodmatch-roadnet-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.fmrn");
        save(&net, &path).unwrap();
        let decoded = load(&path).unwrap();
        assert_networks_equal(&net, &decoded);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let net = GridCityBuilder::new(3, 3).build();
        let bytes = to_bytes(&net);
        let err = from_bytes(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated));
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let err = from_bytes(&[0u8; 64]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadHeader { .. }));
    }

    #[test]
    fn corrupt_class_is_rejected() {
        let net = GridCityBuilder::new(2, 2).build();
        let mut bytes = to_bytes(&net).to_vec();
        // Corrupt the first edge's class byte: header(6) + count(4) + 4 nodes * 16 +
        // count(4) + from(4) + to(4) + length(8) = offset of the class byte.
        let offset = 6 + 4 + 4 * 16 + 4 + 4 + 4 + 8;
        bytes[offset] = 99;
        let err = from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)));
    }
}
