//! Time primitives shared by the road network, the dispatcher and the
//! simulator.
//!
//! The paper discretises the day into 24 one-hour slots: edge travel times
//! and restaurant preparation times are both learned per slot (§V-A). The
//! simulation itself runs in continuous time. We therefore provide:
//!
//! * [`TimePoint`] — an absolute instant measured in seconds from the start
//!   of the simulated day (midnight). Values may exceed 24h when a scenario
//!   spans several days; slot lookups wrap around.
//! * [`Duration`] — a non-negative span of seconds.
//! * [`HourSlot`] — one of the 24 hour-of-day buckets.
//!
//! All three are thin wrappers over `f64` seconds. Floating-point seconds are
//! the natural unit here: travel times come out of divisions of edge lengths
//! by speeds, and the matching cost matrices are floating point anyway.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of seconds in one hour.
pub const SECS_PER_HOUR: f64 = 3_600.0;
/// Number of seconds in one day.
pub const SECS_PER_DAY: f64 = 24.0 * SECS_PER_HOUR;

/// An absolute instant, in seconds since the simulated day's midnight.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TimePoint(f64);

/// A non-negative span of time, in seconds.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Duration(f64);

/// One of the 24 hour-of-day slots used for congestion and prep-time models.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct HourSlot(u8);

impl TimePoint {
    /// The start of the simulated day.
    pub const MIDNIGHT: TimePoint = TimePoint(0.0);

    /// Creates a time point from raw seconds since midnight.
    ///
    /// # Panics
    /// Panics if `secs` is not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite(), "TimePoint must be finite, got {secs}");
        TimePoint(secs)
    }

    /// Creates a time point from an hour/minute/second triple.
    pub fn from_hms(hour: u32, minute: u32, second: u32) -> Self {
        TimePoint(f64::from(hour) * SECS_PER_HOUR + f64::from(minute) * 60.0 + f64::from(second))
    }

    /// Seconds since midnight as a raw `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0
    }

    /// The hour-of-day slot this instant falls into (wrapping across days).
    #[inline]
    pub fn hour_slot(self) -> HourSlot {
        let day_secs = self.0.rem_euclid(SECS_PER_DAY);
        let hour = (day_secs / SECS_PER_HOUR).floor() as u8;
        HourSlot(hour.min(23))
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: TimePoint) -> Duration {
        Duration::from_secs_f64((self.0 - earlier.0).max(0.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: TimePoint) -> TimePoint {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: TimePoint) -> TimePoint {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration from raw seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN or infinite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "Duration must be finite and non-negative, got {secs}"
        );
        Duration(secs)
    }

    /// Creates a duration from whole minutes.
    #[inline]
    pub fn from_mins(mins: f64) -> Self {
        Duration::from_secs_f64(mins * 60.0)
    }

    /// Creates a duration from whole hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Duration::from_secs_f64(hours * SECS_PER_HOUR)
    }

    /// The duration in seconds as a raw `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0
    }

    /// The duration expressed in minutes.
    #[inline]
    pub fn as_mins_f64(self) -> f64 {
        self.0 / 60.0
    }

    /// The duration expressed in hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 / SECS_PER_HOUR
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Subtraction that clamps at zero rather than panicking on underflow.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration((self.0 - other.0).max(0.0))
    }
}

impl HourSlot {
    /// Number of slots in a day.
    pub const COUNT: usize = 24;

    /// Creates a slot from an hour in `0..24`.
    ///
    /// # Panics
    /// Panics if `hour >= 24`.
    #[inline]
    pub fn new(hour: u8) -> Self {
        assert!(hour < 24, "hour slot must be in 0..24, got {hour}");
        HourSlot(hour)
    }

    /// The hour of day in `0..24`.
    #[inline]
    pub fn hour(self) -> u8 {
        self.0
    }

    /// The slot as an array index.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterates over all 24 slots of the day in order.
    pub fn all() -> impl Iterator<Item = HourSlot> {
        (0u8..24).map(HourSlot)
    }

    /// True for the lunch (12:00–14:59) and dinner (19:00–21:59) peaks used
    /// by the paper's "peak slot" experiments (Fig. 6(g)).
    #[inline]
    pub fn is_peak(self) -> bool {
        matches!(self.0, 12..=14 | 19..=21)
    }
}

impl Add<Duration> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn add(self, rhs: Duration) -> TimePoint {
        TimePoint(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for TimePoint {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn sub(self, rhs: Duration) -> TimePoint {
        TimePoint(self.0 - rhs.0)
    }
}

impl Sub<TimePoint> for TimePoint {
    type Output = Duration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    /// Panics (in debug builds, via the `Duration` constructor) if `rhs` is
    /// later than `self`; use [`TimePoint::saturating_since`] when the order
    /// is not guaranteed.
    #[inline]
    fn sub(self, rhs: TimePoint) -> Duration {
        Duration::from_secs_f64(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = self.saturating_sub(rhs);
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration::from_secs_f64(self.0 * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: f64) -> Duration {
        Duration::from_secs_f64(self.0 / rhs)
    }
}

impl Eq for TimePoint {}
impl Ord for TimePoint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("TimePoint is never NaN")
    }
}

impl PartialOrd for TimePoint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for Duration {}
impl Ord for Duration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("Duration is never NaN")
    }
}

impl PartialOrd for Duration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day_secs = self.0.rem_euclid(SECS_PER_DAY);
        let h = (day_secs / 3600.0).floor() as u32;
        let m = ((day_secs % 3600.0) / 60.0).floor() as u32;
        let s = day_secs % 60.0;
        write!(f, "{h:02}:{m:02}:{s:04.1}")
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_slot_of_midday() {
        assert_eq!(TimePoint::from_hms(12, 30, 0).hour_slot(), HourSlot::new(12));
        assert_eq!(TimePoint::from_hms(0, 0, 0).hour_slot(), HourSlot::new(0));
        assert_eq!(TimePoint::from_hms(23, 59, 59).hour_slot(), HourSlot::new(23));
    }

    #[test]
    fn hour_slot_wraps_across_days() {
        let t = TimePoint::from_secs_f64(SECS_PER_DAY + 3.0 * SECS_PER_HOUR + 10.0);
        assert_eq!(t.hour_slot(), HourSlot::new(3));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = TimePoint::from_hms(10, 0, 0);
        let d = Duration::from_mins(45.0);
        let later = t + d;
        assert_eq!(later - t, d);
        assert_eq!((later - d).as_secs_f64(), t.as_secs_f64());
    }

    #[test]
    fn saturating_since_clamps() {
        let a = TimePoint::from_hms(9, 0, 0);
        let b = TimePoint::from_hms(10, 0, 0);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_hours(1.0));
    }

    #[test]
    fn duration_conversions() {
        let d = Duration::from_hours(1.5);
        assert!((d.as_mins_f64() - 90.0).abs() < 1e-9);
        assert!((d.as_secs_f64() - 5400.0).abs() < 1e-9);
    }

    #[test]
    fn duration_saturating_sub() {
        let a = Duration::from_secs_f64(10.0);
        let b = Duration::from_secs_f64(25.0);
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(b.saturating_sub(a).as_secs_f64(), 15.0);
    }

    #[test]
    fn peak_slots_cover_lunch_and_dinner() {
        let peaks: Vec<u8> = HourSlot::all().filter(|s| s.is_peak()).map(|s| s.hour()).collect();
        assert_eq!(peaks, vec![12, 13, 14, 19, 20, 21]);
    }

    #[test]
    #[should_panic(expected = "Duration must be finite and non-negative")]
    fn negative_duration_panics() {
        let _ = Duration::from_secs_f64(-1.0);
    }

    #[test]
    fn time_point_display_is_clock_like() {
        assert_eq!(format!("{}", TimePoint::from_hms(9, 5, 30)), "09:05:30.0");
    }
}
