//! Geodesic helpers: haversine distance, bearing (Definition 10 in the paper)
//! and the angular distance used to anticipate vehicle movement (§IV-D1).
//!
//! The paper's angular distance of a vehicle `v` (currently at `source`,
//! heading to `dest`) with respect to a candidate node `u` is
//!
//! ```text
//! adist(v, u, t) = (1 - cos(Θ(source, dest) - Θ(source, u))) / 2
//! ```
//!
//! where `Θ` is the initial great-circle bearing between two points. The value
//! lies in `[0, 1]`: 0 when `u` lies exactly in the direction of travel, 1
//! when it lies in the diametrically opposite direction.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in meters (IUGG value), used by the haversine formula.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A geographic point in degrees of latitude and longitude.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude in degrees.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in meters.
    pub fn distance_m(self, other: GeoPoint) -> f64 {
        haversine_meters(self, other)
    }

    /// Initial great-circle bearing towards `other`, in radians in `[0, 2π)`.
    pub fn bearing_to(self, other: GeoPoint) -> f64 {
        bearing(self, other)
    }
}

/// Haversine (great-circle) distance between two points, in meters.
///
/// This is the distance function used by the Reyes et al. baseline, which the
/// paper criticises for ignoring the road network; we keep it around both for
/// that baseline and for generating realistic edge lengths in synthetic
/// cities.
pub fn haversine_meters(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();

    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

/// Initial great-circle bearing from `s` towards `t` (Definition 10),
/// rendered in radians in the range `[0, 2π)`.
///
/// Follows the paper's formulation: `Θ(s, t) = atan2(X, Y)` with
/// `X = cos(φ_t)·sin(λ_t − λ_s)` and
/// `Y = cos(φ_s)·sin(φ_t) − sin(φ_s)·cos(φ_t)·cos(λ_t − λ_s)`.
pub fn bearing(s: GeoPoint, t: GeoPoint) -> f64 {
    let phi_s = s.lat.to_radians();
    let phi_t = t.lat.to_radians();
    let dlon = (t.lon - s.lon).to_radians();

    let x = phi_t.cos() * dlon.sin();
    let y = phi_s.cos() * phi_t.sin() - phi_s.sin() * phi_t.cos() * dlon.cos();
    let theta = x.atan2(y);
    theta.rem_euclid(std::f64::consts::TAU)
}

/// Angular distance between the direction of travel (`source → dest`) and the
/// direction towards a candidate node (`source → candidate`), in `[0, 1]`.
///
/// Returns 0 when the two points are in the same direction, 1 when they are
/// diametrically opposite. When `source` coincides with either endpoint the
/// bearing is undefined; we return 0.5 — a neutral value that neither favours
/// nor penalises the candidate, matching the intent of Eq. 8.
pub fn angular_distance(source: GeoPoint, dest: GeoPoint, candidate: GeoPoint) -> f64 {
    const EPS_M: f64 = 0.5;
    if haversine_meters(source, dest) < EPS_M || haversine_meters(source, candidate) < EPS_M {
        return 0.5;
    }
    let theta_dest = bearing(source, dest);
    let theta_cand = bearing(source, candidate);
    (1.0 - (theta_dest - theta_cand).cos()) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-6;

    #[test]
    fn haversine_zero_for_identical_points() {
        let p = GeoPoint::new(12.97, 77.59);
        assert!(haversine_meters(p, p) < TOL);
    }

    #[test]
    fn haversine_known_distance() {
        // One degree of latitude is roughly 111.2 km.
        let a = GeoPoint::new(12.0, 77.0);
        let b = GeoPoint::new(13.0, 77.0);
        let d = haversine_meters(a, b);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = GeoPoint::new(12.9, 77.6);
        let b = GeoPoint::new(13.1, 77.7);
        assert!((haversine_meters(a, b) - haversine_meters(b, a)).abs() < TOL);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = GeoPoint::new(0.0, 0.0);
        let north = GeoPoint::new(1.0, 0.0);
        let east = GeoPoint::new(0.0, 1.0);
        let south = GeoPoint::new(-1.0, 0.0);
        let west = GeoPoint::new(0.0, -1.0);
        assert!(bearing(origin, north).abs() < 1e-3);
        assert!((bearing(origin, east) - std::f64::consts::FRAC_PI_2).abs() < 1e-3);
        assert!((bearing(origin, south) - std::f64::consts::PI).abs() < 1e-3);
        assert!((bearing(origin, west) - 3.0 * std::f64::consts::FRAC_PI_2).abs() < 1e-3);
    }

    #[test]
    fn bearing_is_in_range() {
        let a = GeoPoint::new(12.9, 77.6);
        for (lat, lon) in [(13.0, 77.0), (12.0, 78.0), (12.9, 77.6001), (12.8, 77.5)] {
            let b = bearing(a, GeoPoint::new(lat, lon));
            assert!((0.0..std::f64::consts::TAU).contains(&b), "bearing {b} out of range");
        }
    }

    #[test]
    fn angular_distance_same_direction_is_zero() {
        let source = GeoPoint::new(0.0, 0.0);
        let dest = GeoPoint::new(0.0, 1.0);
        let candidate = GeoPoint::new(0.0, 0.5);
        assert!(angular_distance(source, dest, candidate) < 1e-9);
    }

    #[test]
    fn angular_distance_opposite_direction_is_one() {
        let source = GeoPoint::new(0.0, 0.0);
        let dest = GeoPoint::new(0.0, 1.0);
        let candidate = GeoPoint::new(0.0, -1.0);
        assert!((angular_distance(source, dest, candidate) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn angular_distance_perpendicular_is_half() {
        let source = GeoPoint::new(0.0, 0.0);
        let dest = GeoPoint::new(0.0, 1.0);
        let candidate = GeoPoint::new(1.0, 0.0);
        let d = angular_distance(source, dest, candidate);
        assert!((d - 0.5).abs() < 1e-3, "got {d}");
    }

    #[test]
    fn angular_distance_degenerate_is_neutral() {
        let p = GeoPoint::new(10.0, 10.0);
        let q = GeoPoint::new(10.1, 10.1);
        assert_eq!(angular_distance(p, p, q), 0.5);
        assert_eq!(angular_distance(p, q, p), 0.5);
    }
}
