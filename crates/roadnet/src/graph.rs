//! The road network graph (Definition 1 of the paper).
//!
//! A [`RoadNetwork`] is a weighted directed graph whose nodes are road
//! intersections (with geographic coordinates) and whose edges are road
//! segments. The temporal weight `β(e, t)` of an edge is its free-flow
//! traversal time scaled by the [`CongestionProfile`] multiplier of its road
//! class at the hour slot containing `t`.
//!
//! The adjacency structure is CSR-like (a flat edge array plus per-node
//! offsets) so that neighbour iteration during Dijkstra touches contiguous
//! memory. Networks are immutable once built; construction goes through
//! [`RoadNetworkBuilder`].

use crate::congestion::{CongestionProfile, RoadClass};
use crate::geo::GeoPoint;
use crate::ids::{EdgeId, NodeId};
use crate::timeofday::{Duration, TimePoint};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Metadata stored for every node (road intersection).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    /// Geographic position of the intersection.
    pub position: GeoPoint,
}

/// Metadata stored for every directed edge (road segment).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeRecord {
    /// Tail of the edge (the segment is traversed `from → to`).
    pub from: NodeId,
    /// Head of the edge.
    pub to: NodeId,
    /// Length of the segment in meters.
    pub length_m: f64,
    /// Free-flow traversal time in seconds.
    pub free_flow_secs: f64,
    /// Functional class, controlling congestion sensitivity.
    pub class: RoadClass,
}

/// An immutable, time-dependent road network.
///
/// Cloning a `RoadNetwork` is cheap: the underlying storage is shared behind
/// an [`Arc`], which lets the dispatcher, simulator and multiple worker
/// threads reference the same network without copies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoadNetwork {
    inner: Arc<Inner>,
}

#[derive(Debug, Serialize, Deserialize)]
struct Inner {
    nodes: Vec<NodeRecord>,
    edges: Vec<EdgeRecord>,
    /// CSR offsets: out-edges of node `u` are `edge_order[offsets[u]..offsets[u+1]]`.
    offsets: Vec<u32>,
    /// Edge ids sorted by tail node.
    edge_order: Vec<EdgeId>,
    congestion: CongestionProfile,
}

impl RoadNetwork {
    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.len()
    }

    /// Number of directed edges in the network.
    pub fn edge_count(&self) -> usize {
        self.inner.edges.len()
    }

    /// Iterates over all node ids in dense order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterates over all edge ids in dense order.
    pub fn edge_ids(&self) -> impl DoubleEndedIterator<Item = EdgeId> + ExactSizeIterator + '_ {
        (0..self.edge_count() as u32).map(EdgeId)
    }

    /// Returns the record of `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range for this network.
    pub fn node(&self, node: NodeId) -> &NodeRecord {
        &self.inner.nodes[node.index()]
    }

    /// Returns the geographic position of `node`.
    pub fn position(&self, node: NodeId) -> GeoPoint {
        self.node(node).position
    }

    /// Returns the record of `edge`.
    ///
    /// # Panics
    /// Panics if `edge` is out of range for this network.
    pub fn edge(&self, edge: EdgeId) -> &EdgeRecord {
        &self.inner.edges[edge.index()]
    }

    /// The congestion profile used to evaluate `β(e, t)`.
    pub fn congestion(&self) -> &CongestionProfile {
        &self.inner.congestion
    }

    /// Out-edges of `node`, as `(EdgeId, &EdgeRecord)` pairs.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &EdgeRecord)> + '_ {
        let lo = self.inner.offsets[node.index()] as usize;
        let hi = self.inner.offsets[node.index() + 1] as usize;
        self.inner.edge_order[lo..hi].iter().map(move |&eid| (eid, &self.inner.edges[eid.index()]))
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        let lo = self.inner.offsets[node.index()] as usize;
        let hi = self.inner.offsets[node.index() + 1] as usize;
        hi - lo
    }

    /// Temporal weight `β(e, t)`: the time needed to traverse `edge` when the
    /// traversal starts at time `t` (Definition 1).
    pub fn travel_time(&self, edge: EdgeId, t: TimePoint) -> Duration {
        let rec = &self.inner.edges[edge.index()];
        let mult = self.inner.congestion.multiplier(rec.class, t.hour_slot());
        Duration::from_secs_f64(rec.free_flow_secs * mult)
    }

    /// The largest possible `β(e, t)` over all edges and hours, used to
    /// normalise temporal distance in the vehicle-sensitive weight of Eq. 8.
    pub fn max_travel_time(&self) -> Duration {
        let max_free = self.inner.edges.iter().map(|e| e.free_flow_secs).fold(0.0_f64, f64::max);
        Duration::from_secs_f64(max_free * self.inner.congestion.max_multiplier())
    }

    /// Straight-line (haversine) distance between two nodes, in meters.
    pub fn haversine_between(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance_m(self.position(b))
    }

    /// Returns the node nearest to `point` by straight-line distance.
    ///
    /// This mirrors the paper's handling of vehicles that are not exactly on
    /// an intersection: "we approximate its location to the closest node in
    /// the road network". Linear scan — adequate for the network sizes used in
    /// the experiments, and only called when snapping external positions.
    ///
    /// # Panics
    /// Panics if the network has no nodes.
    pub fn nearest_node(&self, point: GeoPoint) -> NodeId {
        assert!(!self.inner.nodes.is_empty(), "nearest_node on empty network");
        let mut best = NodeId(0);
        let mut best_d = f64::INFINITY;
        for (idx, rec) in self.inner.nodes.iter().enumerate() {
            let d = rec.position.distance_m(point);
            if d < best_d {
                best_d = d;
                best = NodeId::from_index(idx);
            }
        }
        best
    }

    /// Total length of all edges, in meters. Useful for workload statistics.
    pub fn total_edge_length_m(&self) -> f64 {
        self.inner.edges.iter().map(|e| e.length_m).sum()
    }
}

/// Incremental builder for [`RoadNetwork`].
///
/// Nodes must be added before edges referencing them. The builder validates
/// endpoints and edge attributes eagerly so that a constructed network is
/// always internally consistent.
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    nodes: Vec<NodeRecord>,
    edges: Vec<EdgeRecord>,
    congestion: Option<CongestionProfile>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the congestion profile (defaults to
    /// [`CongestionProfile::metropolitan`] if never called).
    pub fn congestion(mut self, profile: CongestionProfile) -> Self {
        self.congestion = Some(profile);
        self
    }

    /// Adds a node at `position` and returns its id.
    pub fn add_node(&mut self, position: GeoPoint) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeRecord { position });
        id
    }

    /// Adds a directed edge with an explicit length and road class. The
    /// free-flow travel time is derived from the class's free-flow speed.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added, if the endpoints are
    /// equal, or if `length_m` is not a positive finite number.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        length_m: f64,
        class: RoadClass,
    ) -> EdgeId {
        assert!(from.index() < self.nodes.len(), "edge tail {from} not in builder");
        assert!(to.index() < self.nodes.len(), "edge head {to} not in builder");
        assert_ne!(from, to, "self-loop edges are not allowed");
        assert!(
            length_m.is_finite() && length_m > 0.0,
            "edge length must be positive, got {length_m}"
        );
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeRecord {
            from,
            to,
            length_m,
            free_flow_secs: length_m / class.free_flow_speed_mps(),
            class,
        });
        id
    }

    /// Adds a pair of directed edges `a → b` and `b → a` with the same length
    /// and class, returning both ids.
    pub fn add_bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        length_m: f64,
        class: RoadClass,
    ) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b, length_m, class), self.add_edge(b, a, length_m, class))
    }

    /// Adds a directed edge whose length is the haversine distance between
    /// the endpoints' positions.
    pub fn add_edge_geodesic(&mut self, from: NodeId, to: NodeId, class: RoadClass) -> EdgeId {
        let length = self.nodes[from.index()].position.distance_m(self.nodes[to.index()].position);
        self.add_edge(from, to, length.max(1.0), class)
    }

    /// Current number of nodes added.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current number of edges added.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the builder into an immutable [`RoadNetwork`].
    ///
    /// # Panics
    /// Panics if no nodes were added.
    pub fn build(self) -> RoadNetwork {
        assert!(!self.nodes.is_empty(), "a road network needs at least one node");
        let node_count = self.nodes.len();

        // Counting sort of edges by tail node into a CSR layout.
        let mut counts = vec![0u32; node_count + 1];
        for edge in &self.edges {
            counts[edge.from.index() + 1] += 1;
        }
        for i in 0..node_count {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut edge_order = vec![EdgeId(0); self.edges.len()];
        for (idx, edge) in self.edges.iter().enumerate() {
            let slot = cursor[edge.from.index()] as usize;
            edge_order[slot] = EdgeId::from_index(idx);
            cursor[edge.from.index()] += 1;
        }

        RoadNetwork {
            inner: Arc::new(Inner {
                nodes: self.nodes,
                edges: self.edges,
                offsets,
                edge_order,
                congestion: self.congestion.unwrap_or_default(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeofday::TimePoint;

    fn tiny_network() -> RoadNetwork {
        // Three nodes in a line with a shortcut back.
        let mut b = RoadNetworkBuilder::new().congestion(CongestionProfile::free_flow());
        let n0 = b.add_node(GeoPoint::new(0.0, 0.0));
        let n1 = b.add_node(GeoPoint::new(0.0, 0.01));
        let n2 = b.add_node(GeoPoint::new(0.0, 0.02));
        b.add_edge(n0, n1, 1000.0, RoadClass::Arterial);
        b.add_edge(n1, n2, 1000.0, RoadClass::Local);
        b.add_edge(n2, n0, 2500.0, RoadClass::Collector);
        b.build()
    }

    #[test]
    fn builder_produces_expected_counts() {
        let net = tiny_network();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 3);
        assert_eq!(net.out_degree(NodeId(0)), 1);
        assert_eq!(net.out_degree(NodeId(1)), 1);
        assert_eq!(net.out_degree(NodeId(2)), 1);
    }

    #[test]
    fn out_edges_report_correct_heads() {
        let net = tiny_network();
        let heads: Vec<NodeId> = net.out_edges(NodeId(0)).map(|(_, e)| e.to).collect();
        assert_eq!(heads, vec![NodeId(1)]);
        let heads: Vec<NodeId> = net.out_edges(NodeId(2)).map(|(_, e)| e.to).collect();
        assert_eq!(heads, vec![NodeId(0)]);
    }

    #[test]
    fn travel_time_uses_free_flow_speed() {
        let net = tiny_network();
        let t = TimePoint::from_hms(4, 0, 0);
        // 1000 m arterial at ~13.9 m/s ≈ 72 s.
        let tt = net.travel_time(EdgeId(0), t).as_secs_f64();
        assert!((tt - 1000.0 / RoadClass::Arterial.free_flow_speed_mps()).abs() < 1e-9);
    }

    #[test]
    fn travel_time_reacts_to_congestion() {
        let mut b = RoadNetworkBuilder::new().congestion(CongestionProfile::metropolitan());
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.01));
        b.add_edge(a, c, 1000.0, RoadClass::Arterial);
        let net = b.build();
        let night = net.travel_time(EdgeId(0), TimePoint::from_hms(3, 0, 0));
        let dinner = net.travel_time(EdgeId(0), TimePoint::from_hms(19, 30, 0));
        assert!(dinner > night);
    }

    #[test]
    fn nearest_node_snaps_to_closest() {
        let net = tiny_network();
        let snapped = net.nearest_node(GeoPoint::new(0.0, 0.0119));
        assert_eq!(snapped, NodeId(1));
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.01));
        let (e1, e2) = b.add_bidirectional(a, c, 500.0, RoadClass::Local);
        let net = b.build();
        assert_eq!(net.edge(e1).from, a);
        assert_eq!(net.edge(e2).from, c);
        assert_eq!(net.edge(e1).to, c);
        assert_eq!(net.edge(e2).to, a);
    }

    #[test]
    fn geodesic_edge_length_matches_haversine() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(GeoPoint::new(12.0, 77.0));
        let c = b.add_node(GeoPoint::new(12.0, 77.01));
        let e = b.add_edge_geodesic(a, c, RoadClass::Collector);
        let net = b.build();
        let expected = net.position(a).distance_m(net.position(c));
        assert!((net.edge(e).length_m - expected).abs() < 1e-6);
    }

    #[test]
    fn max_travel_time_bounds_every_edge() {
        let net = tiny_network();
        let cap = net.max_travel_time();
        for e in net.edge_ids() {
            for h in 0..24 {
                let t = TimePoint::from_hms(h, 0, 0);
                assert!(net.travel_time(e, t) <= cap);
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        b.add_edge(a, a, 10.0, RoadClass::Local);
    }

    #[test]
    #[should_panic(expected = "edge length must be positive")]
    fn non_positive_length_rejected() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.0, 0.01));
        b.add_edge(a, c, 0.0, RoadClass::Local);
    }

    #[test]
    fn clone_shares_storage() {
        let net = tiny_network();
        let clone = net.clone();
        assert!(Arc::ptr_eq(&net.inner, &clone.inner));
    }
}
