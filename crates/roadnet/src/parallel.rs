//! Deterministic scoped fan-out shared by the dispatch hot path and index
//! construction.
//!
//! Both per-window dispatch work (FoodGraph edge construction, batch route
//! planning — see `foodmatch_core::parallel`, which re-exports this module)
//! and per-hour-slot index warm-up
//! ([`ShortestPathEngine::warm_all`](crate::ShortestPathEngine::warm_all))
//! consist of many independent evaluations against shared `Send + Sync`
//! state, fanned out across `std::thread::scope` workers with output
//! *bit-for-bit identical* to the serial path.
//!
//! The implementation lives in [`foodmatch_matching::parallel`] — the
//! workspace's dependency-free leaf crate — so the assignment layer's
//! per-component parallel solve ([`foodmatch_matching::Decomposed`]) can use
//! the same primitive; this module re-exports it under the historical
//! `foodmatch_roadnet::parallel` path.

pub use foodmatch_matching::parallel::parallel_map;
