//! Connected-component sharding of sparse assignment instances, and the
//! [`Decomposed`] meta-solver that solves the shards in parallel.
//!
//! ## Why sharding is exact
//!
//! Let the *finite-cost graph* of a [`SparseCostMatrix`] be the bipartite
//! graph whose edges are the explicit entries strictly below the default
//! cost Ω (explicit entries are required to be ≤ Ω — the FoodGraph
//! invariant). Rows and columns in different connected components of this
//! graph are joined only by Ω edges. An optimal dense matching never
//! *needs* such a cross edge: an Ω edge costs exactly as much as leaving
//! both endpoints for the deterministic Ω padding, so any optimal solution
//! can be rewritten — at identical total cost — to use sub-Ω edges within
//! components plus arbitrary Ω padding. The sub-Ω part of an optimum is a
//! minimum-weight matching of reduced weights `c_e − Ω ≤ 0`, and since
//! matchings constrain rows/columns only within their own component, that
//! minimisation splits exactly into one independent minimisation per
//! component:
//!
//! ```text
//!   min_dense = Ω·min(rows, cols) + Σ_components min-matching(component)
//! ```
//!
//! Each per-component subproblem is handed to the inner solver as its own
//! sparse matrix (same default Ω), so the inner solver's own optimum — its
//! sub-Ω pairs — is exactly the component's term. Stitching the per-
//! component sub-Ω pairs back together and re-padding therefore reproduces
//! the dense optimum, for *any* exact inner solver.
//!
//! Components are independent, so they are solved concurrently through the
//! shared deterministic [`parallel_map`](crate::parallel::parallel_map):
//! results come back in component order and each component's solve is
//! single-threaded, so the stitched assignment is bit-identical for every
//! thread count. This sharding is also the enabling step for NUMA-aware
//! dispatch later: whole components can be pinned to a socket.

use crate::matrix::{Assignment, SparseCostMatrix};
use crate::parallel::parallel_map;
use crate::solver::{debug_assert_entries_at_most_default, pad_assignment, AssignmentSolver};

/// One connected component of the finite-cost bipartite graph.
#[derive(Clone, Debug)]
pub struct Component {
    /// Global row indices in this component, ascending.
    pub rows: Vec<usize>,
    /// Global column indices in this component, ascending.
    pub cols: Vec<usize>,
    /// The component's own sparse matrix (local indices, same default cost).
    pub matrix: SparseCostMatrix,
}

impl Component {
    /// Number of explicit sub-default entries in the component.
    pub fn edges(&self) -> usize {
        self.matrix.explicit_entries()
    }
}

/// Finds the connected components of the finite-cost graph of `costs` via
/// union-find over the sub-default explicit entries.
///
/// Rows and columns touched by no sub-default entry belong to no component
/// (they can only ever be Ω-padded) and are not returned. Components are
/// ordered by their smallest global row index, and rows/columns within a
/// component are ascending, so the decomposition is deterministic.
pub fn decompose(costs: &SparseCostMatrix) -> Vec<Component> {
    let n = costs.rows();
    let m = costs.cols();
    let omega = costs.default_cost();
    // Union-find over rows (0..n) and columns (n..n+m).
    let mut parent: Vec<usize> = (0..n + m).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let mut useful: Vec<(usize, usize, f64)> = Vec::new();
    for &(r, c, v) in costs.entries() {
        if v < omega {
            useful.push((r, c, v));
            let (a, b) = (find(&mut parent, r), find(&mut parent, n + c));
            if a != b {
                // Union by smaller root id keeps roots deterministic.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi] = lo;
            }
        }
    }

    // Group rows and columns by root, in ascending order per component.
    let mut component_of_root: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut components: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    let mut row_slot: Vec<Option<(usize, usize)>> = vec![None; n]; // (component, local row)
    let mut col_slot: Vec<Option<(usize, usize)>> = vec![None; m];
    // Only rows/cols that carry at least one useful edge participate.
    let mut row_used = vec![false; n];
    let mut col_used = vec![false; m];
    for &(r, c, _) in &useful {
        row_used[r] = true;
        col_used[c] = true;
    }
    for (r, &used) in row_used.iter().enumerate() {
        if !used {
            continue;
        }
        let root = find(&mut parent, r);
        let idx = *component_of_root.entry(root).or_insert_with(|| {
            components.push((Vec::new(), Vec::new()));
            components.len() - 1
        });
        row_slot[r] = Some((idx, components[idx].0.len()));
        components[idx].0.push(r);
    }
    for (c, &used) in col_used.iter().enumerate() {
        if !used {
            continue;
        }
        let root = find(&mut parent, n + c);
        let idx = *component_of_root
            .get(&root)
            .expect("a used column always shares a root with some used row");
        col_slot[c] = Some((idx, components[idx].1.len()));
        components[idx].1.push(c);
    }

    let mut matrices: Vec<SparseCostMatrix> = components
        .iter()
        .map(|(rows, cols)| SparseCostMatrix::new(rows.len(), cols.len(), omega))
        .collect();
    for &(r, c, v) in &useful {
        let (idx, lr) = row_slot[r].expect("useful rows are slotted");
        let (cidx, lc) = col_slot[c].expect("useful cols are slotted");
        debug_assert_eq!(idx, cidx, "an edge never crosses components");
        matrices[idx].set(lr, lc, v);
    }

    components
        .into_iter()
        .zip(matrices)
        .map(|((rows, cols), matrix)| Component { rows, cols, matrix })
        .collect()
}

/// Meta-solver: shards the instance by connected component, solves each
/// component independently with the inner solver — in parallel — and
/// stitches the per-component assignments back together. Exact whenever the
/// inner solver is (see the module docs for the proof sketch).
#[derive(Clone, Debug)]
pub struct Decomposed<S> {
    inner: S,
    threads: usize,
    metrics: DecomposedMetrics,
}

/// `matching.components` / `matching.component_size` handles, acquired once
/// at construction (inert without a recorder) so `solve` never touches the
/// registry — the per-window hot path does handle *use* only.
#[derive(Clone, Debug)]
struct DecomposedMetrics {
    components: foodmatch_telemetry::Histogram,
    component_size: foodmatch_telemetry::Histogram,
}

impl DecomposedMetrics {
    fn acquire() -> Self {
        DecomposedMetrics {
            components: foodmatch_telemetry::histogram("matching.components"),
            component_size: foodmatch_telemetry::histogram("matching.component_size"),
        }
    }
}

impl<S: AssignmentSolver> Decomposed<S> {
    /// Wraps `inner`, solving components serially until
    /// [`with_threads`](Self::with_threads) widens the fan-out. Telemetry
    /// handles bind to the recorder installed at construction time.
    pub fn new(inner: S) -> Self {
        Decomposed { inner, threads: 1, metrics: DecomposedMetrics::acquire() }
    }

    /// Sets the maximum number of worker threads for per-component solves.
    /// The result is bit-identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

impl<S: AssignmentSolver> AssignmentSolver for Decomposed<S> {
    fn name(&self) -> &'static str {
        match self.inner.name() {
            "dense-km" => "decomposed-dense-km",
            "sparse-km" => "decomposed-sparse-km",
            "auction" => "decomposed-auction",
            // The per-component crossover pick only exists sharded, so the
            // canonical `SolverKind::Auto` name carries no prefix.
            "auto-km" => "auto",
            _ => "decomposed",
        }
    }

    fn solve(&self, costs: &SparseCostMatrix) -> Assignment {
        debug_assert_entries_at_most_default(costs);
        let omega = costs.default_cost();
        let components = decompose(costs);
        if self.metrics.components.is_live() {
            self.metrics.components.record(components.len() as u64);
            for component in &components {
                self.metrics
                    .component_size
                    .record((component.rows.len() + component.cols.len()) as u64);
            }
        }
        // Small instances or a single component: skip the sharding overhead.
        if components.len() <= 1 {
            let solved = match components.into_iter().next() {
                Some(only) => stitch_component(&only, self.inner.solve(&only.matrix), omega),
                None => Vec::new(),
            };
            return pad_assignment(costs.rows(), costs.cols(), omega, &solved);
        }
        let per_component: Vec<Vec<(usize, usize, f64)>> =
            parallel_map(&components, self.threads, |_, component| {
                stitch_component(component, self.inner.solve(&component.matrix), omega)
            });
        let mut useful: Vec<(usize, usize, f64)> = per_component.into_iter().flatten().collect();
        useful.sort_by_key(|&(r, _, _)| r);
        pad_assignment(costs.rows(), costs.cols(), omega, &useful)
    }
}

/// Maps a component-local assignment's useful (sub-Ω) pairs back to global
/// `(row, col, cost)` triples.
fn stitch_component(
    component: &Component,
    local: Assignment,
    omega: f64,
) -> Vec<(usize, usize, f64)> {
    local
        .pairs()
        .filter_map(|(lr, lc)| {
            let cost = component.matrix.get(lr, lc);
            (cost < omega).then(|| (component.rows[lr], component.cols[lc], cost))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::DenseKm;
    use crate::SparseKm;

    fn block_diagonal() -> SparseCostMatrix {
        // Two 2×2 blocks plus an isolated row/column pair of Ω only.
        let mut costs = SparseCostMatrix::new(5, 5, 100.0);
        costs.set(0, 0, 1.0);
        costs.set(0, 1, 9.0);
        costs.set(1, 1, 2.0);
        costs.set(2, 2, 3.0);
        costs.set(3, 2, 1.0);
        costs.set(3, 3, 4.0);
        costs
    }

    #[test]
    fn decompose_finds_the_blocks() {
        let costs = block_diagonal();
        let components = decompose(&costs);
        assert_eq!(components.len(), 2);
        assert_eq!(components[0].rows, vec![0, 1]);
        assert_eq!(components[0].cols, vec![0, 1]);
        assert_eq!(components[1].rows, vec![2, 3]);
        assert_eq!(components[1].cols, vec![2, 3]);
        assert_eq!(components[0].edges(), 3);
        assert_eq!(components[1].edges(), 3);
        // Row 4 / col 4 carry no sub-Ω edge and belong to no component.
    }

    #[test]
    fn entries_at_the_default_do_not_join_components() {
        let mut costs = SparseCostMatrix::new(2, 2, 100.0);
        costs.set(0, 0, 1.0);
        costs.set(0, 1, 100.0); // == Ω: no better than rejection
        costs.set(1, 1, 2.0);
        let components = decompose(&costs);
        assert_eq!(components.len(), 2);
    }

    #[test]
    fn decomposed_matches_the_monolithic_solve() {
        let costs = block_diagonal();
        let whole = DenseKm.solve(&costs);
        for threads in [1, 2, 4] {
            let sharded = Decomposed::new(DenseKm).with_threads(threads).solve(&costs);
            assert!((sharded.total_cost - whole.total_cost).abs() < 1e-9);
            assert_eq!(sharded.matched_pairs(), whole.matched_pairs());
            assert!(sharded.is_consistent());
        }
        let sparse_sharded = Decomposed::new(SparseKm).with_threads(2).solve(&costs);
        assert!((sparse_sharded.total_cost - whole.total_cost).abs() < 1e-9);
    }

    #[test]
    fn all_default_matrix_decomposes_to_nothing_and_pads() {
        let costs = SparseCostMatrix::new(3, 2, 42.0);
        assert!(decompose(&costs).is_empty());
        let a = Decomposed::new(SparseKm).solve(&costs);
        assert_eq!(a.matched_pairs(), 2);
        assert!((a.total_cost - 84.0).abs() < 1e-9);
    }

    #[test]
    fn thread_count_never_changes_the_assignment() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut costs = SparseCostMatrix::new(20, 18, 1000.0);
        for r in 0..20 {
            for c in 0..18 {
                if rng.random_range(0.0..1.0) < 0.12 {
                    costs.set(r, c, rng.random_range(0.0..900.0));
                }
            }
        }
        let reference = Decomposed::new(SparseKm).with_threads(1).solve(&costs);
        for threads in [2, 3, 8, 32] {
            let solved = Decomposed::new(SparseKm).with_threads(threads).solve(&costs);
            assert_eq!(solved, reference, "threads = {threads}");
        }
    }
}
