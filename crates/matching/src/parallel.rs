//! Deterministic scoped fan-out shared across the workspace.
//!
//! Three layers lean on the same primitive: per-component assignment solving
//! ([`Decomposed`](crate::Decomposed)), per-window dispatch work (FoodGraph
//! edge construction, batch route planning — see `foodmatch_core::parallel`),
//! and per-hour-slot index warm-up (`ShortestPathEngine::warm_all` in
//! `foodmatch-roadnet`). All of them consist of many independent evaluations
//! against shared `Send + Sync` state. [`parallel_map`] fans such work out
//! across `std::thread::scope` workers while keeping the output *bit-for-bit
//! identical* to the serial path: items are split into contiguous chunks,
//! every worker writes only its own chunk, and results come back in input
//! order.
//!
//! The implementation lives here — `foodmatch-matching` is the workspace's
//! dependency-free leaf crate — and is re-exported under the historical
//! `foodmatch_roadnet::parallel` and `foodmatch_core::parallel` paths.

/// Maps `f` over `items` with up to `threads` scoped workers, returning
/// results in input order (the closure also receives the item's index).
///
/// With `threads <= 1` — or fewer items than would justify a spawn — the map
/// runs inline on the calling thread; the output is identical either way, so
/// callers choose a thread count purely on wall-clock grounds.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(chunk_idx, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, item)| f(chunk_idx * chunk_size + i, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel_map worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [0, 1, 2, 3, 8, 200] {
            assert_eq!(
                parallel_map(&items, threads, |_, &x| x * x),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn passes_global_indices() {
        let items = vec!['a'; 23];
        let indices = parallel_map(&items, 4, |i, _| i);
        assert_eq!(indices, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[42], 4, |_, &x| x + 1), vec![43]);
    }
}
