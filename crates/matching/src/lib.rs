//! # foodmatch-matching
//!
//! Minimum-weight bipartite matching substrate for the FoodMatch
//! reproduction — a pluggable assignment-solver library.
//!
//! The paper assigns order batches to vehicles by building a bipartite
//! "FoodGraph" and computing a minimum-weight perfect matching (§IV-A),
//! using the Bourgeois–Lassalle extension to rectangular matrices
//! (reference [19]) because the number of batches and the number of
//! vehicles rarely agree. After Algorithm 2's sparsification most
//! (batch, vehicle) pairs sit at the rejection penalty Ω, so the crate is
//! organised around solvers that exploit that sparsity behind one trait:
//!
//! * [`AssignmentSolver`] — the solver trait: sparse matrix in,
//!   [`Assignment`] out, deterministic.
//! * [`DenseKm`] / [`hungarian::solve`] — the serial dense Kuhn–Munkres
//!   solver (`O(n²·m)` with potentials); the fully general reference.
//! * [`SparseKm`] — Kuhn–Munkres via successive shortest paths directly on
//!   the explicit entries; never materialises the Ω cells.
//! * [`Auction`] — the ε-scaling auction algorithm; exact on integer costs,
//!   within `t·ε` on reals.
//! * [`Decomposed`] — a meta-solver that shards the instance by connected
//!   component of the finite-cost graph ([`decompose`]) and solves the
//!   components in parallel via [`parallel::parallel_map`], exactly.
//! * [`SolverKind`] — run-time solver selection (the `DispatchConfig` knob
//!   and the `repro --solver` flag).
//! * [`CostMatrix`] / [`SparseCostMatrix`] — dense and sparse cost storage.
//! * [`greedy::solve`] — the locally-optimal matcher used as a reference
//!   point in tests and ablation benchmarks.
//!
//! The crate is deliberately free of food-delivery concepts: it is a
//! reusable assignment-problem library (and the workspace's dependency-free
//! leaf — `parallel_map` lives here so every layer above can share it).
//!
//! ```
//! use foodmatch_matching::{SolverKind, SparseCostMatrix};
//!
//! // Three batches, three vehicles; most pairs are at Ω = 3600 s.
//! let mut costs = SparseCostMatrix::new(3, 3, 3600.0);
//! costs.set(0, 0, 240.0);
//! costs.set(1, 0, 300.0);
//! costs.set(1, 1, 180.0);
//! costs.set(2, 2, 420.0);
//!
//! let solver = SolverKind::DecomposedSparseKm.build(4);
//! let assignment = solver.solve(&costs);
//! assert_eq!(assignment.matched_pairs(), 3);
//! assert_eq!(assignment.total_cost, 240.0 + 180.0 + 420.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod auction;
pub mod decompose;
pub mod greedy;
pub mod hungarian;
pub mod matrix;
pub mod parallel;
pub mod solver;
pub mod sparse_km;

pub use auction::Auction;
pub use decompose::{decompose, Component, Decomposed};
pub use hungarian::solve as solve_hungarian;
pub use matrix::{Assignment, CostMatrix, SparseCostMatrix};
pub use parallel::parallel_map;
pub use solver::{AssignmentSolver, AutoKm, DenseKm, SolverKind, AUTO_DENSITY_CROSSOVER};
pub use sparse_km::SparseKm;
