//! # foodmatch-matching
//!
//! Minimum-weight bipartite matching substrate for the FoodMatch
//! reproduction.
//!
//! The paper assigns order batches to vehicles by building a bipartite
//! "FoodGraph" and computing a minimum-weight perfect matching with the
//! Kuhn–Munkres algorithm, using the Bourgeois–Lassalle extension to
//! rectangular matrices (reference [19]) because the number of batches and
//! the number of vehicles rarely agree. This crate provides:
//!
//! * [`CostMatrix`] — a dense rectangular cost matrix.
//! * [`SparseCostMatrix`] — a sparse builder used by the sparsified FoodGraph
//!   of Algorithm 2, where most entries are the rejection penalty Ω.
//! * [`hungarian::solve`] — the Kuhn–Munkres solver (O(n²·m) with
//!   potentials), which matches every row when `rows ≤ cols`, and every
//!   column otherwise, i.e. `min(|U1|, |U2|)` pairs as required by the
//!   paper's LP formulation in §IV-A.
//! * [`greedy::solve`] — the locally-optimal matcher used as a reference
//!   point in tests and ablation benchmarks.
//!
//! The crate is deliberately free of food-delivery concepts: it is a reusable
//! assignment-problem library.
//!
//! ```
//! use foodmatch_matching::{CostMatrix, solve_hungarian};
//!
//! // Two workers, three tasks.
//! let costs = CostMatrix::from_rows(&[
//!     vec![4.0, 1.0, 3.0],
//!     vec![2.0, 0.0, 5.0],
//! ]);
//! let assignment = solve_hungarian(&costs);
//! assert_eq!(assignment.matched_pairs(), 2);
//! assert!(assignment.total_cost <= 4.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod greedy;
pub mod hungarian;
pub mod matrix;

pub use hungarian::solve as solve_hungarian;
pub use matrix::{Assignment, CostMatrix, SparseCostMatrix};
