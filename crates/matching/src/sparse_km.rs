//! Sparse Kuhn–Munkres: minimum-cost assignment without densifying Ω.
//!
//! The dense solver spends `O(rows²·cols)` touching every cell, most of
//! which carry the rejection penalty Ω in a sparsified FoodGraph. This
//! solver never materialises those cells. It exploits the *rejection
//! reduction*: for a matrix whose explicit entries never exceed the default
//! cost Ω (the FoodGraph invariant — Algorithm 2 clamps with `min(·, Ω)`),
//! the dense optimum over perfect matchings of size `t = min(rows, cols)`
//! decomposes as
//!
//! ```text
//!   min_dense = Ω·t + min over matchings M of explicit edges of Σ (c_e − Ω)
//! ```
//!
//! because any matching of explicit edges extends to size `t` with Ω edges
//! (the Ω graph is complete), and every reduced weight `c_e − Ω ≤ 0`. The
//! right-hand minimisation is a minimum-weight bipartite matching of
//! *unrestricted size* over only the explicit entries, solved here with
//! successive shortest augmenting paths under Johnson potentials: each round
//! runs one Dijkstra over the residual graph (all reduced arc costs ≥ 0) and
//! augments along the cheapest path, stopping as soon as the cheapest
//! augmenting path no longer has negative true cost. Path costs are
//! non-decreasing across rounds, so the stop is globally optimal.
//!
//! ## Early termination
//!
//! The per-round Dijkstra does not run the heap dry. The target is the free
//! column minimising the *true* path cost `dist(c) + pot_col(c)`, and any
//! node still in the heap at reduced distance `d` can only lead to free
//! columns of true cost at least `d + L`, where
//! `L = min over free columns of pot_col`. The search therefore stops at the
//! first pop with `d + L > min(best settled target so far, 0)` — the `0`
//! arm covers the round where no augmenting path is profitable and the
//! whole solve ends. The bound is strict, so every free column *tying* the
//! best true cost is settled before the stop: the selected target, the
//! augmenting path, and the potential updates (all settled nodes carry
//! final distances; unsettled ones sit above the update cap) are
//! bit-for-bit the ones the exhaustive search produces.
//!
//! Complexity: `O(t · (E + V) log V)` with `E` the explicit entries and
//! `V = rows + cols` — independent of the Ω fill; early termination removes
//! most of the `(E + V) log V` constant on instances whose augmenting paths
//! are short. Fully deterministic: heap ties break on node index and the
//! adjacency is sorted by column.
//!
//! ## Pooled scratch
//!
//! The dispatch loop calls this solver once per window per shard, on
//! matrices of similar shape every time. All working state — adjacency,
//! matching and potential arrays, the Dijkstra heap and its distance array
//! — lives in a thread-local [`Scratch`] pool, so repeated solves on a
//! thread are allocation-free once the pool has grown to the workload's
//! high-water mark (the same idiom as `roadnet::dijkstra::SearchSpace`).
//! The per-round distance reset is O(1) via generation stamps: a slot's
//! distance counts only if its stamp matches the current round, everything
//! else reads as +∞. Pooling is invisible in the output — every array the
//! algorithm reads is (re)initialised per solve or stamped per round, and
//! the results stay bit-identical to the unpooled solver's.

use crate::matrix::{Assignment, SparseCostMatrix};
use crate::solver::{debug_assert_entries_at_most_default, pad_assignment, AssignmentSolver};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The sparse Kuhn–Munkres solver. See the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct SparseKm;

impl AssignmentSolver for SparseKm {
    fn name(&self) -> &'static str {
        "sparse-km"
    }

    fn solve(&self, costs: &SparseCostMatrix) -> Assignment {
        debug_assert_entries_at_most_default(costs);
        let useful = min_weight_matching(costs);
        pad_assignment(costs.rows(), costs.cols(), costs.default_cost(), &useful)
    }
}

/// Min-heap entry: smallest distance first, ties on the lower node index.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for BinaryHeap's max-heap semantics; distances are finite.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The pooled per-thread working state of [`min_weight_matching`]. Every
/// vector grows to the workload's high-water mark and stays; the distance
/// array resets per Dijkstra round in O(1) via generation stamps.
#[derive(Default)]
struct Scratch {
    /// Per-row `(col, reduced weight)` lists; inner vectors are reused.
    adj: Vec<Vec<(usize, f64)>>,
    match_row: Vec<Option<usize>>,
    match_col: Vec<Option<usize>>,
    pot_row: Vec<f64>,
    pot_col: Vec<f64>,
    /// `dist[i]` is meaningful only when `stamp[i] == generation`;
    /// everything else reads as +∞.
    dist: Vec<f64>,
    stamp: Vec<u32>,
    generation: u32,
    parent_col: Vec<usize>,
    parent_row: Vec<usize>,
    heap: BinaryHeap<HeapEntry>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Computes the minimum-weight (most negative) matching over the explicit
/// sub-Ω entries, returning the matched `(row, col, original cost)` triples
/// sorted by row. Working state comes from the thread-local [`Scratch`]
/// pool; only the returned triples allocate in steady state.
fn min_weight_matching(costs: &SparseCostMatrix) -> Vec<(usize, usize, f64)> {
    SCRATCH.with(|scratch| min_weight_matching_in(&mut scratch.borrow_mut(), costs))
}

fn min_weight_matching_in(
    scratch: &mut Scratch,
    costs: &SparseCostMatrix,
) -> Vec<(usize, usize, f64)> {
    let n = costs.rows();
    let m = costs.cols();
    let omega = costs.default_cost();
    let Scratch {
        adj,
        match_row,
        match_col,
        pot_row,
        pot_col,
        dist,
        stamp,
        generation,
        parent_col,
        parent_row,
        heap,
    } = scratch;

    // Reduced weights w = c − Ω ≤ 0 on the explicit useful edges, sorted by
    // column within each row (same shape `SparseCostMatrix::row_adjacency`
    // produces, built into the pooled row vectors).
    if adj.len() < n {
        adj.resize_with(n, Vec::new);
    }
    for row in adj[..n].iter_mut() {
        row.clear();
    }
    for &(r, c, v) in costs.entries() {
        if v < omega {
            adj[r].push((c, v - omega));
        }
    }
    for row in adj[..n].iter_mut() {
        row.sort_by_key(|&(c, _)| c);
    }

    // Nodes: rows are 0..n, columns are n..n+m. The per-solve arrays are
    // fully re-initialised here; nothing from a previous solve leaks.
    match_row.clear();
    match_row.resize(n, None);
    match_col.clear();
    match_col.resize(m, None);
    // Johnson potentials keeping every residual arc's reduced cost ≥ 0:
    // pot_row starts at 0, pot_col at the cheapest incoming weight.
    pot_row.clear();
    pot_row.resize(n, 0.0);
    pot_col.clear();
    pot_col.resize(m, 0.0);
    for row in &adj[..n] {
        for &(c, w) in row {
            if w < pot_col[c] {
                pot_col[c] = w;
            }
        }
    }

    if stamp.len() < n + m {
        stamp.resize(n + m, 0);
        dist.resize(stamp.len(), f64::INFINITY);
    }
    parent_col.clear();
    parent_col.resize(m, usize::MAX);
    parent_row.clear();
    parent_row.resize(n, usize::MAX);

    loop {
        // One Dijkstra over the residual graph from every free useful row.
        // Bumping the generation invalidates every stamped distance — the
        // O(1) equivalent of refilling `dist` with +∞.
        if *generation == u32::MAX {
            stamp.fill(0);
            *generation = 0;
        }
        *generation += 1;
        let gen = *generation;
        let read_dist = |dist: &[f64], stamp: &[u32], i: usize| {
            if stamp[i] == gen {
                dist[i]
            } else {
                f64::INFINITY
            }
        };
        heap.clear();
        for r in 0..n {
            if match_row[r].is_none() && !adj[r].is_empty() {
                dist[r] = 0.0;
                stamp[r] = gen;
                heap.push(HeapEntry { dist: 0.0, node: r });
            }
        }
        // Early-termination machinery (see the module docs): `free_pot_min`
        // lower-bounds the potential of any candidate target column, and
        // `best_settled` tracks the best true cost among settled free
        // columns.
        let free_pot_min = (0..m)
            .filter(|&c| match_col[c].is_none())
            .map(|c| pot_col[c])
            .fold(f64::INFINITY, f64::min);
        let mut best_settled = f64::INFINITY;
        while let Some(HeapEntry { dist: d, node }) = heap.pop() {
            if d > read_dist(dist, stamp, node) {
                continue; // stale entry
            }
            // Everything still in the heap leads to true costs of at least
            // `d + free_pot_min`; once that exceeds both the best settled
            // target and 0 (the no-augmentation stop), the round's outcome
            // is fixed.
            if d + free_pot_min > best_settled.min(0.0) {
                break;
            }
            if node < n {
                let r = node;
                for &(c, w) in &adj[r] {
                    if match_row[r] == Some(c) {
                        continue; // matched edges only have a backward arc
                    }
                    let reduced = (w + pot_row[r] - pot_col[c]).max(0.0);
                    let nd = d + reduced;
                    if nd < read_dist(dist, stamp, n + c) {
                        dist[n + c] = nd;
                        stamp[n + c] = gen;
                        parent_col[c] = r;
                        heap.push(HeapEntry { dist: nd, node: n + c });
                    }
                }
            } else {
                let c = node - n;
                if match_col[c].is_none() {
                    // A settled free column: a candidate target with final
                    // distance, hence exact true cost.
                    best_settled = best_settled.min(d + pot_col[c]);
                }
                if let Some(r) = match_col[c] {
                    // Backward arc along the matched edge; its reduced cost is
                    // 0 up to floating-point noise.
                    let w = adj[r]
                        .iter()
                        .find(|&&(cc, _)| cc == c)
                        .map(|&(_, w)| w)
                        .expect("matched edges come from the adjacency");
                    let reduced = (-(w + pot_row[r] - pot_col[c])).max(0.0);
                    let nd = d + reduced;
                    if nd < read_dist(dist, stamp, r) {
                        dist[r] = nd;
                        stamp[r] = gen;
                        parent_row[r] = c;
                        heap.push(HeapEntry { dist: nd, node: r });
                    }
                }
            }
        }

        // Cheapest augmenting path = free column minimising the *true* cost
        // (reduced distance un-telescoped through the potentials).
        let mut best: Option<(f64, usize)> = None;
        for c in 0..m {
            let d = read_dist(dist, stamp, n + c);
            if match_col[c].is_some() || !d.is_finite() {
                continue;
            }
            let true_cost = d + pot_col[c];
            if best.is_none_or(|(cost, _)| true_cost < cost) {
                best = Some((true_cost, c));
            }
        }
        let Some((best_cost, target)) = best else { break };
        if best_cost >= 0.0 {
            break; // no augmenting path improves on rejection
        }

        // Update potentials (capped at the target's distance — the classic
        // rule that keeps unreached arcs non-negative), then augment.
        let cap = read_dist(dist, stamp, n + target);
        for (r, pot) in pot_row.iter_mut().enumerate().take(n) {
            *pot += read_dist(dist, stamp, r).min(cap);
        }
        for (c, pot) in pot_col.iter_mut().enumerate().take(m) {
            *pot += read_dist(dist, stamp, n + c).min(cap);
        }
        let mut c = target;
        loop {
            let r = parent_col[c];
            let previous = match_row[r];
            match_row[r] = Some(c);
            match_col[c] = Some(r);
            match previous {
                Some(next) => c = next,
                None => break,
            }
        }
    }

    (0..n).filter_map(|r| match_row[r].map(|c| (r, c, costs.get(r, c)))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::DenseKm;

    fn assert_matches_dense(costs: &SparseCostMatrix) {
        let sparse = SparseKm.solve(costs);
        let dense = DenseKm.solve(costs);
        assert!(
            (sparse.total_cost - dense.total_cost).abs() < 1e-6,
            "sparse {} vs dense {}\n{}",
            sparse.total_cost,
            dense.total_cost,
            costs.to_dense()
        );
        assert_eq!(sparse.matched_pairs(), dense.matched_pairs());
        assert!(sparse.is_consistent());
    }

    #[test]
    fn empty_matrix_is_all_rejections() {
        let costs = SparseCostMatrix::new(3, 2, 100.0);
        let a = SparseKm.solve(&costs);
        assert_eq!(a.matched_pairs(), 2);
        assert!((a.total_cost - 200.0).abs() < 1e-9);
    }

    #[test]
    fn picks_the_global_optimum_not_the_greedy_one() {
        // The paper's Example 5/6 shape: greedy takes the 0 edge and is then
        // forced into rejection; the optimum pays 1 + 1.
        let mut costs = SparseCostMatrix::new(2, 2, 100.0);
        costs.set(0, 0, 0.0);
        costs.set(0, 1, 1.0);
        costs.set(1, 0, 1.0);
        let a = SparseKm.solve(&costs);
        assert!((a.total_cost - 2.0).abs() < 1e-9);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
    }

    #[test]
    fn leaves_worse_than_rejection_edges_alone() {
        // A single explicit edge exactly at Ω is no better than rejection;
        // the solver must not prefer it over the padding.
        let mut costs = SparseCostMatrix::new(1, 2, 50.0);
        costs.set(0, 1, 50.0);
        let a = SparseKm.solve(&costs);
        assert!((a.total_cost - 50.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_dense_km_on_random_sparse_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let rows = rng.random_range(1..=7);
            let cols = rng.random_range(1..=7);
            let mut costs = SparseCostMatrix::new(rows, cols, 1000.0);
            for r in 0..rows {
                for c in 0..cols {
                    if rng.random_range(0.0..1.0) < 0.45 {
                        costs.set(r, c, rng.random_range(0.0..900.0));
                    }
                }
            }
            assert_matches_dense(&costs);
        }
    }

    #[test]
    fn agrees_with_dense_km_on_larger_early_terminating_instances() {
        // Bigger, very sparse instances: the regime where the early
        // termination skips most of each round's heap. Equal-index ties are
        // seeded deliberately (costs drawn from a coarse grid).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        for round in 0..8 {
            let rows = 30 + round * 5;
            let cols = 25 + round * 4;
            let mut costs = SparseCostMatrix::new(rows, cols, 600.0);
            for r in 0..rows {
                for c in 0..cols {
                    if rng.random_range(0.0..1.0) < 0.06 {
                        costs.set(r, c, (rng.random_range(0..12) * 50) as f64);
                    }
                }
            }
            assert_matches_dense(&costs);
            // Determinism: repeated solves return identical assignments.
            assert_eq!(SparseKm.solve(&costs), SparseKm.solve(&costs));
        }
    }

    #[test]
    fn pooled_scratch_is_invisible_across_interleaved_shapes() {
        // Alternate between a large and a small instance so the pool's
        // high-water arrays dwarf the small solve, then pin every pooled
        // result bit-identical to one from a pristine scratch. Catches any
        // state leaking between solves (stale stamps, dirty adjacency rows,
        // oversized arrays read past their logical length).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut instances = Vec::new();
        for round in 0..6 {
            let (rows, cols) = if round % 2 == 0 { (40, 35) } else { (3, 4) };
            let mut costs = SparseCostMatrix::new(rows, cols, 700.0);
            for r in 0..rows {
                for c in 0..cols {
                    if rng.random_range(0.0..1.0) < 0.2 {
                        costs.set(r, c, (rng.random_range(0..14) * 50) as f64);
                    }
                }
            }
            instances.push(costs);
        }
        for costs in &instances {
            let pooled = min_weight_matching(costs);
            let pristine = min_weight_matching_in(&mut Scratch::default(), costs);
            assert_eq!(pooled, pristine);
            assert_matches_dense(costs);
        }
    }

    #[test]
    fn agrees_with_dense_km_on_fully_dense_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let rows = rng.random_range(1..=6);
            let cols = rng.random_range(1..=6);
            let mut costs = SparseCostMatrix::new(rows, cols, 500.0);
            for r in 0..rows {
                for c in 0..cols {
                    costs.set(r, c, rng.random_range(0.0..499.0));
                }
            }
            assert_matches_dense(&costs);
        }
    }
}
