//! Greedy bipartite matcher.
//!
//! Repeatedly picks the globally cheapest unmatched `(row, column)` pair
//! until `min(rows, cols)` pairs are matched. This mirrors the decision rule
//! of the paper's Greedy baseline (§III) at the matching layer, and serves as
//! a reference point for the Kuhn–Munkres solver: the Hungarian total cost
//! can never exceed the greedy total cost.

use crate::matrix::{Assignment, CostMatrix};

/// Solves the assignment problem greedily.
///
/// The result matches `min(rows, cols)` pairs but is generally not optimal.
pub fn solve(costs: &CostMatrix) -> Assignment {
    let rows = costs.rows();
    let cols = costs.cols();
    let target = rows.min(cols);

    // Sort all cells once by cost; ties broken by (row, col) for determinism.
    let mut cells: Vec<(usize, usize)> =
        (0..rows).flat_map(|r| (0..cols).map(move |c| (r, c))).collect();
    cells.sort_by(|&(r1, c1), &(r2, c2)| {
        costs
            .get(r1, c1)
            .partial_cmp(&costs.get(r2, c2))
            .expect("costs are finite")
            .then_with(|| (r1, c1).cmp(&(r2, c2)))
    });

    let mut row_to_col = vec![None; rows];
    let mut col_to_row = vec![None; cols];
    let mut total_cost = 0.0;
    let mut matched = 0;
    for (r, c) in cells {
        if matched == target {
            break;
        }
        if row_to_col[r].is_none() && col_to_row[c].is_none() {
            row_to_col[r] = Some(c);
            col_to_row[c] = Some(r);
            total_cost += costs.get(r, c);
            matched += 1;
        }
    }

    Assignment { row_to_col, col_to_row, total_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian;

    #[test]
    fn greedy_matches_min_dimension_pairs() {
        let costs = CostMatrix::from_rows(&[vec![5.0, 1.0, 2.0], vec![4.0, 2.0, 3.0]]);
        let a = solve(&costs);
        assert_eq!(a.matched_pairs(), 2);
        assert!(a.is_consistent());
    }

    #[test]
    fn greedy_picks_cheapest_cell_first() {
        let costs = CostMatrix::from_rows(&[vec![9.0, 1.0], vec![2.0, 8.0]]);
        let a = solve(&costs);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
        assert!((a.total_cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_can_be_suboptimal_but_never_beats_hungarian() {
        let costs = CostMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 100.0]]);
        let greedy = solve(&costs);
        let optimal = hungarian::solve(&costs);
        assert!((greedy.total_cost - 100.0).abs() < 1e-9);
        assert!((optimal.total_cost - 2.0).abs() < 1e-9);
        assert!(optimal.total_cost <= greedy.total_cost);
    }

    #[test]
    fn greedy_vs_hungarian_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let rows = rng.random_range(1..=7);
            let cols = rng.random_range(1..=7);
            let costs = CostMatrix::from_fn(rows, cols, |_, _| rng.random_range(0.0..50.0));
            let greedy = solve(&costs);
            let optimal = hungarian::solve(&costs);
            assert_eq!(greedy.matched_pairs(), rows.min(cols));
            assert!(optimal.total_cost <= greedy.total_cost + 1e-9);
        }
    }

    #[test]
    fn deterministic_under_ties() {
        let costs = CostMatrix::filled(3, 3, 1.0);
        let a = solve(&costs);
        let b = solve(&costs);
        assert_eq!(a, b);
        assert_eq!(a.matched_pairs(), 3);
    }
}
