//! The Kuhn–Munkres (Hungarian) algorithm for rectangular cost matrices.
//!
//! This is the matching engine behind the paper's FoodGraph assignment
//! (§IV-A): given costs between order batches (rows) and vehicles (columns),
//! it finds the assignment of `min(rows, cols)` pairs with minimum total
//! cost. The implementation is the classic potentials-based formulation
//! (sometimes called the Jonker–Volgenant variant of Kuhn–Munkres), running
//! in `O(rows² · cols)` over an index-swapped *view* when rows > columns (no
//! transposed copy is ever materialised) — i.e. the Bourgeois–Lassalle
//! rectangular extension the paper cites.

use crate::matrix::{Assignment, CostMatrix};

/// Solves the minimum-cost assignment problem for `costs`.
///
/// Every row is matched to a distinct column when `rows ≤ cols`; otherwise
/// every column is matched to a distinct row. The returned
/// [`Assignment::total_cost`] is the sum of matched entries.
pub fn solve(costs: &CostMatrix) -> Assignment {
    if costs.rows() <= costs.cols() {
        solve_wide(costs.rows(), costs.cols(), |r, c| costs.get(r, c))
    } else {
        // Solve the transpose as an index-swapped *view* (no copy of the
        // matrix data), then swap the two directions back.
        let solved = solve_wide(costs.cols(), costs.rows(), |r, c| costs.get(c, r));
        Assignment {
            row_to_col: solved.col_to_row,
            col_to_row: solved.row_to_col,
            total_cost: solved.total_cost,
        }
    }
}

/// Core solver over an `n × m` cost view, requiring `n ≤ m`.
fn solve_wide(n: usize, m: usize, costs: impl Fn(usize, usize) -> f64) -> Assignment {
    debug_assert!(n <= m);

    // Potentials for rows (u) and columns (v); p[j] is the row (1-based)
    // matched to column j, with column 0 acting as the virtual root.
    let mut u = vec![0.0_f64; n + 1];
    let mut v = vec![0.0_f64; m + 1];
    let mut p = vec![0_usize; m + 1];
    let mut way = vec![0_usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0_usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];

        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0_usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = costs(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            debug_assert!(delta.is_finite(), "augmenting path must exist in a complete matrix");
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }

        // Augment along the alternating path recorded in `way`.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![None; n];
    let mut col_to_row = vec![None; m];
    let mut total_cost = 0.0;
    for (j, &row_plus_one) in p.iter().enumerate().take(m + 1).skip(1) {
        if row_plus_one != 0 {
            let row = row_plus_one - 1;
            let col = j - 1;
            row_to_col[row] = Some(col);
            col_to_row[col] = Some(row);
            total_cost += costs(row, col);
        }
    }

    let assignment = Assignment { row_to_col, col_to_row, total_cost };
    debug_assert!(assignment.is_consistent());
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force minimum assignment cost over all injections of the smaller
    /// side into the larger side. Only usable for tiny matrices.
    fn brute_force_cost(costs: &CostMatrix) -> f64 {
        fn recurse(costs: &CostMatrix, row: usize, used: &mut Vec<bool>) -> f64 {
            if row == costs.rows() {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for col in 0..costs.cols() {
                if !used[col] {
                    used[col] = true;
                    let candidate = costs.get(row, col) + recurse(costs, row + 1, used);
                    used[col] = false;
                    if candidate < best {
                        best = candidate;
                    }
                }
            }
            best
        }
        if costs.rows() <= costs.cols() {
            recurse(costs, 0, &mut vec![false; costs.cols()])
        } else {
            let t = costs.transposed();
            recurse(&t, 0, &mut vec![false; t.cols()])
        }
    }

    #[test]
    fn square_matrix_known_answer() {
        // Classic example: optimal assignment is (0,1), (1,0), (2,2) = 1+2+3.
        let costs =
            CostMatrix::from_rows(&[vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 3.0]]);
        let a = solve(&costs);
        assert_eq!(a.matched_pairs(), 3);
        assert!((a.total_cost - brute_force_cost(&costs)).abs() < 1e-9);
    }

    #[test]
    fn hungarian_beats_locally_greedy_choices() {
        // The situation highlighted by the paper's Example 5/6: the greedy
        // pairing (taking the globally cheapest edge first) is forced into an
        // expensive completion, while the global matching accepts one
        // slightly worse edge to achieve a lower total.
        let costs = CostMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 100.0]]);
        let a = solve(&costs);
        assert!((a.total_cost - 2.0).abs() < 1e-9);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
        assert_eq!(a.total_cost, brute_force_cost(&costs));
    }

    #[test]
    fn wide_matrix_matches_all_rows() {
        let costs = CostMatrix::from_rows(&[vec![10.0, 2.0, 8.0, 4.0], vec![7.0, 3.0, 6.0, 1.0]]);
        let a = solve(&costs);
        assert_eq!(a.matched_pairs(), 2);
        assert!((a.total_cost - brute_force_cost(&costs)).abs() < 1e-9);
        assert!(a.is_consistent());
    }

    #[test]
    fn tall_matrix_matches_all_columns() {
        let costs = CostMatrix::from_rows(&[
            vec![10.0, 2.0],
            vec![7.0, 3.0],
            vec![1.0, 9.0],
            vec![5.0, 5.0],
        ]);
        let a = solve(&costs);
        assert_eq!(a.matched_pairs(), 2);
        assert!((a.total_cost - brute_force_cost(&costs)).abs() < 1e-9);
        assert!(a.is_consistent());
    }

    #[test]
    fn single_cell_matrix() {
        let costs = CostMatrix::from_rows(&[vec![42.0]]);
        let a = solve(&costs);
        assert_eq!(a.row_to_col, vec![Some(0)]);
        assert_eq!(a.total_cost, 42.0);
    }

    #[test]
    fn identical_costs_still_produce_perfect_matching() {
        let costs = CostMatrix::filled(4, 4, 3.0);
        let a = solve(&costs);
        assert_eq!(a.matched_pairs(), 4);
        assert!((a.total_cost - 12.0).abs() < 1e-9);
    }

    #[test]
    fn negative_costs_are_supported() {
        let costs = CostMatrix::from_rows(&[
            vec![-5.0, 2.0, 1.0],
            vec![3.0, -2.0, 0.0],
            vec![4.0, 1.0, -1.0],
        ]);
        let a = solve(&costs);
        assert!((a.total_cost - brute_force_cost(&costs)).abs() < 1e-9);
        assert!((a.total_cost - (-8.0)).abs() < 1e-9);
    }

    #[test]
    fn large_penalty_entries_are_avoided_when_possible() {
        let omega = 7200.0;
        let costs = CostMatrix::from_rows(&[
            vec![omega, 10.0, omega],
            vec![20.0, omega, omega],
            vec![omega, omega, 5.0],
        ]);
        let a = solve(&costs);
        assert!((a.total_cost - 35.0).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_many_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..200 {
            let rows = rng.random_range(1..=5);
            let cols = rng.random_range(1..=5);
            let costs = CostMatrix::from_fn(rows, cols, |_, _| rng.random_range(0.0..100.0));
            let a = solve(&costs);
            let expected = brute_force_cost(&costs);
            assert!(
                (a.total_cost - expected).abs() < 1e-6,
                "trial {trial}: hungarian {} vs brute force {expected}\n{costs}",
                a.total_cost
            );
            assert_eq!(a.matched_pairs(), rows.min(cols));
            assert!(a.is_consistent());
        }
    }
}
