//! The ε-scaling auction algorithm (Bertsekas) on sparse instances.
//!
//! The auction view fits the FoodGraph naturally: batches (rows) *bid* for
//! vehicles (columns), the benefit of a pair being how much better it is
//! than rejection, `b(r, c) = Ω − c(r, c) ≥ 0` on the explicit entries and
//! exactly 0 on every Ω pair. The instance is solved with the bidding side
//! the smaller side (transposed otherwise) and then *symmetrised*: enough
//! virtual bidders with zero benefit everywhere are added that bidders and
//! columns balance. Every column therefore ends up owned, which is what
//! makes ε-scaling sound — the classic suboptimality proof cancels the
//! price terms only when both assignments cover all objects, so phases can
//! carry their prices over. (A bidder holding a fixed-price "stay rejected"
//! outside option, or unassigned leftover columns, both break that
//! cancellation — the two classic ways to get this algorithm subtly wrong.)
//!
//! The sparsity trick: the implicit benefit-0 edges (a real bidder's Ω
//! pairs, and everything a virtual bidder sees) are never enumerated. The
//! best and second-best of them are simply the two *cheapest* candidate
//! columns, maintained in a lazy min-price heap — prices only rise, so a
//! stale heap entry is one whose price is below the live price. Each bid
//! costs `O((deg + stale) log m)` instead of `O(m)`.
//!
//! Scaling phases rerun the auction with carried-over prices and a 5×
//! smaller ε, down to a final `ε < 1/(bidders + 2)`. The final assignment
//! satisfies ε-complementary slackness, hence is within `bidders·ε < 1` of
//! the optimum: **exact** when costs are integers (optimal totals then
//! differ by ≥ 1), and within a sub-unit margin on real-valued costs — the
//! one solver in this crate that trades a hair of exactness for simplicity
//! and locality. Like the other sparse solvers it requires explicit entries
//! ≤ Ω.
//!
//! Determinism: bidders bid in FIFO order from a queue seeded in index
//! order; candidate ties break on the earliest candidate in a fixed scan
//! order (adjacent columns ascending, then Ω columns by (price, index)).

use crate::matrix::{Assignment, SparseCostMatrix};
use crate::solver::{debug_assert_entries_at_most_default, pad_assignment, AssignmentSolver};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// The ε-scaling auction solver. See the module docs.
#[derive(Clone, Debug)]
pub struct Auction {
    /// `matching.auction.rounds` — scaling phases per solve. Acquired at
    /// construction (inert without a recorder), never looked up mid-solve.
    rounds: foodmatch_telemetry::Histogram,
}

impl Auction {
    /// An auction solver whose telemetry handle binds to the recorder
    /// installed at construction time.
    pub fn new() -> Self {
        Auction { rounds: foodmatch_telemetry::histogram("matching.auction.rounds") }
    }
}

impl Default for Auction {
    fn default() -> Self {
        Auction::new()
    }
}

impl AssignmentSolver for Auction {
    fn name(&self) -> &'static str {
        "auction"
    }

    fn solve(&self, costs: &SparseCostMatrix) -> Assignment {
        debug_assert_entries_at_most_default(costs);
        let useful = if costs.rows() <= costs.cols() {
            auction_useful(costs, &self.rounds)
        } else {
            let mut swapped: Vec<(usize, usize, f64)> =
                auction_useful(&costs.transposed(), &self.rounds)
                    .into_iter()
                    .map(|(r, c, v)| (c, r, v))
                    .collect();
            swapped.sort_by_key(|&(r, _, _)| r);
            swapped
        };
        pad_assignment(costs.rows(), costs.cols(), costs.default_cost(), &useful)
    }
}

/// Lazy min-price heap entry (smallest price first, ties on column index).
#[derive(PartialEq)]
struct PriceEntry {
    price: f64,
    col: usize,
}

impl Eq for PriceEntry {}

impl Ord for PriceEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for BinaryHeap's max-heap semantics; prices are finite.
        other
            .price
            .partial_cmp(&self.price)
            .expect("prices are finite")
            .then_with(|| other.col.cmp(&self.col))
    }
}

impl PartialOrd for PriceEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the symmetrised ε-scaling auction for `rows ≤ cols`, returning the
/// matched sub-Ω `(row, col, cost)` triples sorted by row.
fn auction_useful(
    costs: &SparseCostMatrix,
    rounds_hist: &foodmatch_telemetry::Histogram,
) -> Vec<(usize, usize, f64)> {
    let n = costs.rows();
    let m = costs.cols();
    debug_assert!(n <= m);
    let omega = costs.default_cost();
    // Benefits b = Ω − c > 0 on the useful edges, sorted by column. Bidders
    // n..m are the virtual zero-benefit rows that symmetrise the instance;
    // real rows without useful edges behave identically to them.
    let adj: Vec<Vec<(usize, f64)>> = costs
        .row_adjacency()
        .into_iter()
        .map(|row| row.into_iter().map(|(c, v)| (c, omega - v)).collect())
        .collect();
    if adj.iter().all(|row| row.is_empty()) {
        return Vec::new();
    }
    let max_benefit = adj.iter().flatten().map(|&(_, b)| b).fold(0.0_f64, f64::max);

    let mut prices = vec![0.0_f64; m];
    let mut heap: BinaryHeap<PriceEntry> =
        (0..m).map(|col| PriceEntry { price: 0.0, col }).collect();
    let mut match_bidder: Vec<Option<usize>> = vec![None; m];
    let mut match_col: Vec<Option<usize>> = vec![None; m];

    let eps_final = 1.0 / (m as f64 + 2.0);
    let mut eps = (max_benefit / 4.0).max(eps_final);
    let mut rounds = 0u64;
    loop {
        match_bidder.iter_mut().for_each(|slot| *slot = None);
        match_col.iter_mut().for_each(|slot| *slot = None);
        run_phase(&adj, &mut prices, &mut heap, &mut match_bidder, &mut match_col, eps);
        rounds += 1;
        if eps <= eps_final {
            break;
        }
        eps = (eps / 5.0).max(eps_final);
    }
    rounds_hist.record(rounds);

    match_bidder
        .iter()
        .take(n)
        .enumerate()
        .filter_map(|(r, c)| {
            let c = (*c)?;
            let cost = costs.get(r, c);
            (cost < omega).then_some((r, c, cost))
        })
        .collect()
}

/// One auction phase at a fixed ε: all `m` bidders (real and virtual) bid
/// until everyone owns a column. Prices persist across phases; assignments
/// are rebuilt each phase.
fn run_phase(
    adj: &[Vec<(usize, f64)>],
    prices: &mut [f64],
    heap: &mut BinaryHeap<PriceEntry>,
    match_bidder: &mut [Option<usize>],
    match_col: &mut [Option<usize>],
    eps: f64,
) {
    static EMPTY: Vec<(usize, f64)> = Vec::new();
    let m = prices.len();
    let mut queue: VecDeque<usize> = (0..m).collect();
    // Scratch for the ≤ 2 cheapest implicit-edge columns per bid.
    let mut omega_candidates: Vec<(usize, f64)> = Vec::with_capacity(2);
    let mut put_back: Vec<PriceEntry> = Vec::new();
    while let Some(bidder) = queue.pop_front() {
        let edges = adj.get(bidder).unwrap_or(&EMPTY);
        // The two cheapest non-adjacent columns stand in for every implicit
        // benefit-0 edge of this bidder.
        omega_candidates.clear();
        put_back.clear();
        while omega_candidates.len() < 2 {
            let Some(entry) = heap.pop() else { break };
            if entry.price < prices[entry.col] {
                continue; // stale: the column was bid up since this entry
            }
            if edges.binary_search_by(|&(c, _)| c.cmp(&entry.col)).is_ok() {
                put_back.push(entry); // adjacent: handled by the explicit scan
                continue;
            }
            omega_candidates.push((entry.col, entry.price));
            put_back.push(entry);
        }
        heap.extend(put_back.drain(..));

        // Best and second-best values; first-seen wins ties.
        let mut best_value = f64::NEG_INFINITY;
        let mut best_col = usize::MAX;
        let mut second = f64::NEG_INFINITY;
        for &(c, b) in edges {
            let value = b - prices[c];
            if value > best_value {
                second = best_value;
                best_value = value;
                best_col = c;
            } else if value > second {
                second = value;
            }
        }
        for &(c, price) in &omega_candidates {
            let value = -price;
            if value > best_value {
                second = best_value;
                best_value = value;
                best_col = c;
            } else if value > second {
                second = value;
            }
        }
        debug_assert!(best_col != usize::MAX, "a bidder always has a candidate");
        // A lone candidate (a 1×1 instance) bids ε.
        let second = if second.is_finite() { second } else { best_value };

        prices[best_col] += best_value - second + eps;
        heap.push(PriceEntry { price: prices[best_col], col: best_col });
        if let Some(evicted) = match_col[best_col] {
            match_bidder[evicted] = None;
            queue.push_back(evicted);
        }
        match_col[best_col] = Some(bidder);
        match_bidder[bidder] = Some(best_col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::DenseKm;

    #[test]
    fn auction_finds_the_exact_optimum_on_integer_costs() {
        let mut costs = SparseCostMatrix::new(2, 2, 100.0);
        costs.set(0, 0, 0.0);
        costs.set(0, 1, 1.0);
        costs.set(1, 0, 1.0);
        let a = Auction::new().solve(&costs);
        assert!((a.total_cost - 2.0).abs() < 1e-9, "got {}", a.total_cost);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rejects_edges_no_better_than_rejection_and_handles_tall_matrices() {
        let mut costs = SparseCostMatrix::new(2, 1, 30.0);
        costs.set(0, 0, 30.0); // == Ω: no better than rejection
        costs.set(1, 0, 12.0);
        let a = Auction::new().solve(&costs);
        assert!((a.total_cost - 12.0).abs() < 1e-9, "got {}", a.total_cost);
        assert_eq!(a.col_to_row, vec![Some(1)]);
    }

    #[test]
    fn matches_dense_km_totals_on_random_integer_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2025);
        for trial in 0..300 {
            let rows = rng.random_range(1..=7);
            let cols = rng.random_range(1..=7);
            let mut costs = SparseCostMatrix::new(rows, cols, 1000.0);
            for r in 0..rows {
                for c in 0..cols {
                    if rng.random_range(0.0..1.0) < 0.5 {
                        costs.set(r, c, rng.random_range(0..900) as f64);
                    }
                }
            }
            let auction = Auction::new().solve(&costs);
            let dense = DenseKm.solve(&costs);
            assert!(
                (auction.total_cost - dense.total_cost).abs() < 0.5,
                "trial {trial}: auction {} vs dense {}\n{}",
                auction.total_cost,
                dense.total_cost,
                costs.to_dense()
            );
            assert_eq!(auction.matched_pairs(), rows.min(cols));
            assert!(auction.is_consistent());
        }
    }
}
