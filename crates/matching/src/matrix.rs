//! Dense and sparse cost matrices plus the assignment result type.

use std::fmt;

/// A dense rectangular cost matrix with `rows × cols` finite entries.
#[derive(Clone, Debug, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Creates a matrix filled with `fill`.
    ///
    /// # Panics
    /// Panics if either dimension is zero or `fill` is not finite.
    pub fn filled(rows: usize, cols: usize, fill: f64) -> Self {
        assert!(rows > 0 && cols > 0, "cost matrix dimensions must be positive");
        assert!(fill.is_finite(), "cost entries must be finite");
        CostMatrix { rows, cols, data: vec![fill; rows * cols] }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows are empty, ragged, or contain non-finite values.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cost matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "cost matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            for &value in row {
                assert!(value.is_finite(), "cost entries must be finite, got {value}");
                data.push(value);
            }
        }
        CostMatrix { rows: rows.len(), cols, data }
    }

    /// Creates a matrix by evaluating `cost(row, col)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut cost: impl FnMut(usize, usize) -> f64) -> Self {
        let mut matrix = CostMatrix::filled(rows, cols, 0.0);
        for r in 0..rows {
            for c in 0..cols {
                matrix.set(r, c, cost(r, c));
            }
        }
        matrix
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cost at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "cost matrix index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the cost at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds or `value` is not finite.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "cost matrix index out of bounds");
        assert!(value.is_finite(), "cost entries must be finite, got {value}");
        self.data[row * self.cols + col] = value;
    }

    /// The transposed matrix.
    pub fn transposed(&self) -> CostMatrix {
        let mut t = CostMatrix::filled(self.cols, self.rows, 0.0);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }
}

impl fmt::Display for CostMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, "\t")?;
                }
                write!(f, "{:.2}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A sparse cost matrix: only explicitly set entries differ from a default
/// cost (the rejection penalty Ω in the FoodGraph).
///
/// The sparsified FoodGraph of Algorithm 2 produces exactly this structure:
/// each vehicle has true marginal-cost edges to at most `k` batches and
/// Ω-edges to every other batch. The sparse solvers
/// ([`SparseKm`](crate::SparseKm), [`Auction`](crate::Auction),
/// [`Decomposed`](crate::Decomposed)) operate on this representation
/// directly, without ever materialising the Ω entries.
#[derive(Clone, Debug)]
pub struct SparseCostMatrix {
    rows: usize,
    cols: usize,
    default_cost: f64,
    /// One record per distinct cell, in first-write order; re-writes update
    /// the record in place (later writes win).
    entries: Vec<(usize, usize, f64)>,
    /// `(row, col)` → index into `entries`.
    index: std::collections::HashMap<(usize, usize), usize>,
}

impl SparseCostMatrix {
    /// Creates an empty sparse matrix where unset entries cost `default_cost`.
    ///
    /// # Panics
    /// Panics if either dimension is zero or `default_cost` is not finite.
    pub fn new(rows: usize, cols: usize, default_cost: f64) -> Self {
        assert!(rows > 0 && cols > 0, "cost matrix dimensions must be positive");
        assert!(default_cost.is_finite(), "default cost must be finite");
        SparseCostMatrix {
            rows,
            cols,
            default_cost,
            entries: Vec::new(),
            index: std::collections::HashMap::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cost used for entries that were never [`set`](Self::set).
    pub fn default_cost(&self) -> f64 {
        self.default_cost
    }

    /// Number of distinct explicitly set cells.
    pub fn explicit_entries(&self) -> usize {
        self.entries.len()
    }

    /// Records the cost of `(row, col)`. Later writes to the same cell win.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds or `value` is not finite.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "cost matrix index out of bounds");
        assert!(value.is_finite(), "cost entries must be finite, got {value}");
        match self.index.entry((row, col)) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.entries[*slot.get()].2 = value;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(self.entries.len());
                self.entries.push((row, col, value));
            }
        }
    }

    /// The cost at `(row, col)`: the explicitly set value, or the default.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "cost matrix index out of bounds");
        match self.index.get(&(row, col)) {
            Some(&i) => self.entries[i].2,
            None => self.default_cost,
        }
    }

    /// The distinct explicit cells as `(row, col, cost)`, in first-write
    /// order (deterministic for deterministic construction).
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Per-row adjacency of the *useful* explicit entries — those strictly
    /// below the default cost, i.e. the finite-cost edges of the bipartite
    /// graph. Each row's `(col, cost)` list is sorted by column, so the
    /// result is independent of insertion order.
    pub fn row_adjacency(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.rows];
        for &(r, c, v) in &self.entries {
            if v < self.default_cost {
                adj[r].push((c, v));
            }
        }
        for row in &mut adj {
            row.sort_by_key(|&(c, _)| c);
        }
        adj
    }

    /// The transposed sparse matrix (rows and columns swapped).
    pub fn transposed(&self) -> SparseCostMatrix {
        let mut t = SparseCostMatrix::new(self.cols, self.rows, self.default_cost);
        for &(r, c, v) in &self.entries {
            t.set(c, r, v);
        }
        t
    }

    /// Materialises the sparse matrix into a dense [`CostMatrix`].
    pub fn to_dense(&self) -> CostMatrix {
        let mut dense = CostMatrix::filled(self.rows, self.cols, self.default_cost);
        for &(r, c, v) in &self.entries {
            dense.set(r, c, v);
        }
        dense
    }
}

/// The result of a bipartite assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// `row_to_col[r]` is the column matched to row `r`, if any.
    pub row_to_col: Vec<Option<usize>>,
    /// `col_to_row[c]` is the row matched to column `c`, if any.
    pub col_to_row: Vec<Option<usize>>,
    /// Sum of the costs of all matched pairs.
    pub total_cost: f64,
}

impl Assignment {
    /// Number of matched (row, column) pairs.
    pub fn matched_pairs(&self) -> usize {
        self.row_to_col.iter().filter(|c| c.is_some()).count()
    }

    /// Iterates over matched `(row, col)` pairs in row order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.row_to_col.iter().enumerate().filter_map(|(r, c)| c.map(|c| (r, c)))
    }

    /// Checks internal consistency: the two directions agree and no column is
    /// used twice. Primarily used by tests and debug assertions.
    pub fn is_consistent(&self) -> bool {
        let mut seen_cols = vec![false; self.col_to_row.len()];
        for (r, col) in self.row_to_col.iter().enumerate() {
            if let Some(c) = *col {
                if c >= self.col_to_row.len() || seen_cols[c] || self.col_to_row[c] != Some(r) {
                    return false;
                }
                seen_cols[c] = true;
            }
        }
        for (c, row) in self.col_to_row.iter().enumerate() {
            if let Some(r) = *row {
                if r >= self.row_to_col.len() || self.row_to_col[r] != Some(c) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_get_set() {
        let mut m = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        m.set(1, 0, 9.0);
        assert_eq!(m.get(1, 0), 9.0);
    }

    #[test]
    fn from_fn_evaluates_every_cell() {
        let m = CostMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn transpose_swaps_dimensions() {
        let m = CostMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn sparse_to_dense_applies_default_and_overrides() {
        let mut s = SparseCostMatrix::new(2, 3, 100.0);
        s.set(0, 1, 5.0);
        s.set(1, 2, 7.0);
        s.set(0, 1, 4.0); // later write wins, in place
        let d = s.to_dense();
        assert_eq!(d.get(0, 0), 100.0);
        assert_eq!(d.get(0, 1), 4.0);
        assert_eq!(d.get(1, 2), 7.0);
        assert_eq!(s.explicit_entries(), 2, "duplicate writes collapse to one cell");
        assert_eq!(s.get(0, 1), 4.0);
        assert_eq!(s.get(0, 0), 100.0, "unset cells read the default");
    }

    #[test]
    fn sparse_row_adjacency_is_sorted_and_skips_non_useful_entries() {
        let mut s = SparseCostMatrix::new(3, 4, 50.0);
        s.set(0, 3, 10.0);
        s.set(0, 1, 20.0);
        s.set(1, 2, 50.0); // == default: not a useful edge
        s.set(1, 0, 60.0); // > default: not a useful edge either
        let adj = s.row_adjacency();
        assert_eq!(adj[0], vec![(1, 20.0), (3, 10.0)]);
        assert!(adj[1].is_empty());
        assert!(adj[2].is_empty());
    }

    #[test]
    fn assignment_consistency_checks() {
        let good = Assignment {
            row_to_col: vec![Some(1), None],
            col_to_row: vec![None, Some(0)],
            total_cost: 1.0,
        };
        assert!(good.is_consistent());
        assert_eq!(good.matched_pairs(), 1);
        assert_eq!(good.pairs().collect::<Vec<_>>(), vec![(0, 1)]);

        let bad = Assignment {
            row_to_col: vec![Some(0), Some(0)],
            col_to_row: vec![Some(0)],
            total_cost: 0.0,
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    #[should_panic(expected = "cost entries must be finite")]
    fn non_finite_entry_rejected() {
        let _ = CostMatrix::from_rows(&[vec![f64::INFINITY]]);
    }

    #[test]
    #[should_panic(expected = "all rows must have the same length")]
    fn ragged_rows_rejected() {
        let _ = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_get_panics() {
        let m = CostMatrix::filled(2, 2, 0.0);
        let _ = m.get(2, 0);
    }
}
