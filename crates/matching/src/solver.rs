//! The pluggable assignment-solver architecture.
//!
//! Every solver answers the same question as the paper's matching stage
//! (§IV-A): given a (sparse) cost matrix between order batches (rows) and
//! vehicles (columns) whose unset entries carry the rejection penalty Ω,
//! return a minimum-cost assignment of `min(rows, cols)` pairs. The
//! implementations trade generality for speed on the sparse instances the
//! FoodGraph actually produces:
//!
//! | Solver | Complexity | Exact? | When to use |
//! |---|---|---|---|
//! | [`DenseKm`] | `O(n²·m)` over *all* cells | always | tiny or fully dense instances; arbitrary matrices (entries may exceed Ω) |
//! | [`SparseKm`](crate::SparseKm) | `O(t·(E + V) log V)` over explicit entries | always¹ | sparse instances — never touches the Ω cells |
//! | [`Auction`](crate::Auction) | ε-scaling forward auction | on integer costs¹ | very sparse instances; within `t·ε` of optimal on real costs |
//! | [`Decomposed<S>`](crate::Decomposed) | per connected component, in parallel | as `S`¹ | windows whose bipartite graph splits — the dispatch default |
//! | [`AutoKm`] | dense or sparse KM per instance, by density | always¹ | inside `Decomposed` ([`SolverKind::Auto`]): mixed or unknown density regimes |
//!
//! ¹ requires the FoodGraph invariant that explicit entries never exceed the
//! default cost Ω (Algorithm 2 clamps every edge weight with `min(·, Ω)`).
//! [`DenseKm`] has no such precondition.
//!
//! ## The rejection-padding convention
//!
//! All solvers return an [`Assignment`] with exactly `min(rows, cols)`
//! matched pairs and a `total_cost` equal to the dense optimum: pairs the
//! solver left at the rejection penalty are padded in deterministically
//! (free rows and free columns paired in ascending index order, Ω each).
//! Consumers that only want the *useful* pairs filter on
//! `costs.get(row, col) < Ω`, exactly as they would against a dense matrix.

use crate::hungarian;
use crate::matrix::{Assignment, SparseCostMatrix};
use foodmatch_telemetry as telemetry;

/// A minimum-cost bipartite assignment solver over sparse cost matrices.
///
/// Implementations must be deterministic: the same matrix must always
/// produce the same [`Assignment`], bit for bit, regardless of thread count
/// or environment.
pub trait AssignmentSolver: Send + Sync {
    /// Short human-readable solver name used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Computes a minimum-cost assignment of `min(rows, cols)` pairs.
    fn solve(&self, costs: &SparseCostMatrix) -> Assignment;
}

/// Today's baseline: densify the matrix (materialising every Ω entry) and
/// run the serial rectangular Kuhn–Munkres solver on it.
///
/// This is the only solver with no precondition on the explicit entries —
/// cells larger than the default cost are honoured — and the reference
/// implementation the sparse solvers are equivalence-tested against.
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseKm;

impl AssignmentSolver for DenseKm {
    fn name(&self) -> &'static str {
        "dense-km"
    }

    fn solve(&self, costs: &SparseCostMatrix) -> Assignment {
        hungarian::solve(&costs.to_dense())
    }
}

/// Assembles the canonical [`Assignment`] from the useful (below-default)
/// pairs a sparse solver matched: fills both directions, then pads with
/// default-cost pairs — free rows and free columns in ascending index order —
/// until `min(rows, cols)` pairs are matched, mirroring the perfect matching
/// a dense solver would return.
pub(crate) fn pad_assignment(
    rows: usize,
    cols: usize,
    default_cost: f64,
    useful: &[(usize, usize, f64)],
) -> Assignment {
    let target = rows.min(cols);
    let mut row_to_col = vec![None; rows];
    let mut col_to_row = vec![None; cols];
    let mut total_cost = 0.0;
    let mut matched = 0usize;
    for &(r, c, cost) in useful {
        debug_assert!(
            row_to_col[r].is_none() && col_to_row[c].is_none(),
            "pairs must be a matching"
        );
        row_to_col[r] = Some(c);
        col_to_row[c] = Some(r);
        total_cost += cost;
        matched += 1;
    }
    debug_assert!(matched <= target);
    let free_cols: Vec<usize> = (0..cols).filter(|&c| col_to_row[c].is_none()).collect();
    let mut next_free = free_cols.into_iter();
    for (r, slot) in row_to_col.iter_mut().enumerate() {
        if matched == target {
            break;
        }
        if slot.is_some() {
            continue;
        }
        let c = next_free.next().expect("a free column exists while matched < min(rows, cols)");
        *slot = Some(c);
        col_to_row[c] = Some(r);
        total_cost += default_cost;
        matched += 1;
    }
    let assignment = Assignment { row_to_col, col_to_row, total_cost };
    debug_assert!(assignment.is_consistent());
    assignment
}

/// Explicit-entry density at which dense and sparse Kuhn–Munkres trade
/// places: the `BENCH_matching.json` tiers put the crossover near 10%
/// (the near-dense city windows are where [`DenseKm`] honestly wins, the
/// decomposing metro windows are where [`SparseKm`](crate::SparseKm) pulls
/// ahead). [`AutoKm`] switches on this value.
pub const AUTO_DENSITY_CROSSOVER: f64 = 0.10;

/// Below this many cells the dense solver's constant factor always wins —
/// there is nothing to amortise a heap-based search over.
const AUTO_SMALL_CELLS: usize = 256;

/// The per-instance crossover pick: routes each matrix to [`DenseKm`] when
/// it is small (≤ `256` cells) or dense (useful-entry density ≥
/// [`AUTO_DENSITY_CROSSOVER`]), and to [`SparseKm`](crate::SparseKm)
/// otherwise.
///
/// The point of the pick is per-*component* adaptivity: wrapped in
/// [`Decomposed`](crate::Decomposed) (which is what [`SolverKind::Auto`]
/// builds), a window that splits into one near-dense downtown shard and
/// many sparse suburban shards sends each shard to the solver that wins on
/// its regime, dominating either fixed choice.
///
/// Shares [`SparseKm`](crate::SparseKm)'s precondition (explicit entries
/// never exceed the default cost) because it may route to it; use
/// [`DenseKm`] directly for matrices that violate the invariant.
#[derive(Clone, Copy, Debug, Default)]
pub struct AutoKm;

impl AutoKm {
    /// True when `costs` should go to the dense solver.
    pub fn prefers_dense(costs: &SparseCostMatrix) -> bool {
        let cells = costs.rows() * costs.cols();
        if cells <= AUTO_SMALL_CELLS {
            return true;
        }
        let useful = costs.entries().iter().filter(|&&(_, _, v)| v < costs.default_cost()).count();
        useful as f64 >= AUTO_DENSITY_CROSSOVER * cells as f64
    }
}

impl AssignmentSolver for AutoKm {
    fn name(&self) -> &'static str {
        "auto-km"
    }

    fn solve(&self, costs: &SparseCostMatrix) -> Assignment {
        if AutoKm::prefers_dense(costs) {
            DenseKm.solve(costs)
        } else {
            crate::SparseKm.solve(costs)
        }
    }
}

/// In debug builds, checks the sparse-solver precondition that no explicit
/// entry exceeds the default cost (the FoodGraph invariant; see the module
/// docs). [`DenseKm`] is the escape hatch for matrices that violate it.
pub(crate) fn debug_assert_entries_at_most_default(costs: &SparseCostMatrix) {
    debug_assert!(
        costs.entries().iter().all(|&(_, _, v)| v <= costs.default_cost()),
        "sparse solvers require explicit entries <= default cost; use DenseKm otherwise"
    );
}

/// The solver configurations selectable at run time (the `DispatchConfig`
/// knob and the `repro --solver` flag).
///
/// `Decomposed*` variants wrap the base solver in
/// [`Decomposed`](crate::Decomposed), sharding the instance by connected
/// component and solving components in parallel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Serial dense Kuhn–Munkres (the pre-refactor behaviour).
    DenseKm,
    /// Sparse Kuhn–Munkres (successive shortest paths on explicit entries).
    SparseKm,
    /// ε-scaling auction.
    Auction,
    /// Component-sharded dense Kuhn–Munkres.
    DecomposedDenseKm,
    /// Component-sharded sparse Kuhn–Munkres — the dispatch default.
    DecomposedSparseKm,
    /// Component-sharded auction.
    DecomposedAuction,
    /// Component-sharded per-instance crossover pick ([`AutoKm`]): each
    /// shard goes to dense KM when small or ≥ ~10% dense, sparse KM
    /// otherwise — the recommended choice when the workload's density
    /// regime is unknown or mixed.
    Auto,
}

impl SolverKind {
    /// Every selectable solver, in documentation order.
    pub const ALL: [SolverKind; 7] = [
        SolverKind::DenseKm,
        SolverKind::SparseKm,
        SolverKind::Auction,
        SolverKind::DecomposedDenseKm,
        SolverKind::DecomposedSparseKm,
        SolverKind::DecomposedAuction,
        SolverKind::Auto,
    ];

    /// The canonical command-line name of the solver.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::DenseKm => "dense-km",
            SolverKind::SparseKm => "sparse-km",
            SolverKind::Auction => "auction",
            SolverKind::DecomposedDenseKm => "decomposed-dense-km",
            SolverKind::DecomposedSparseKm => "decomposed-sparse-km",
            SolverKind::DecomposedAuction => "decomposed-auction",
            SolverKind::Auto => "auto",
        }
    }

    /// Parses a solver name (case-insensitive; `_` and `-` interchangeable).
    pub fn parse(name: &str) -> Option<SolverKind> {
        let normalised: String = name
            .trim()
            .chars()
            .map(|c| if c == '_' { '-' } else { c.to_ascii_lowercase() })
            .collect();
        SolverKind::ALL.into_iter().find(|kind| kind.name() == normalised)
    }

    /// Instantiates the solver. `threads` bounds the per-component fan-out of
    /// the `Decomposed*` variants (`<= 1` solves components serially) and is
    /// ignored by the base solvers.
    pub fn build(self, threads: usize) -> Box<dyn AssignmentSolver> {
        let inner: Box<dyn AssignmentSolver> = match self {
            SolverKind::DenseKm => Box::new(DenseKm),
            SolverKind::SparseKm => Box::new(crate::SparseKm),
            SolverKind::Auction => Box::new(crate::Auction::new()),
            SolverKind::DecomposedDenseKm => {
                Box::new(crate::Decomposed::new(DenseKm).with_threads(threads))
            }
            SolverKind::DecomposedSparseKm => {
                Box::new(crate::Decomposed::new(crate::SparseKm).with_threads(threads))
            }
            SolverKind::DecomposedAuction => {
                Box::new(crate::Decomposed::new(crate::Auction::new()).with_threads(threads))
            }
            SolverKind::Auto => Box::new(crate::Decomposed::new(AutoKm).with_threads(threads)),
        };
        if telemetry::active() {
            let solve_ns = telemetry::histogram(&format!("matching.solve_ns.{}", inner.name()));
            Box::new(InstrumentedSolver { inner, solve_ns })
        } else {
            inner
        }
    }

    /// True when the solver is exact on arbitrary real-valued costs. The
    /// auction variants are exact on integer costs and within `t·ε` (well
    /// under one cost unit) of optimal otherwise.
    pub fn is_exact_on_reals(self) -> bool {
        !matches!(self, SolverKind::Auction | SolverKind::DecomposedAuction)
    }
}

/// Observational wrapper [`SolverKind::build`] adds while a telemetry
/// recorder is installed: times every `solve` into
/// `matching.solve_ns.<solver>` and opens a `solver`-category span.
/// Delegates `name()` untouched so reports and round-trip parsing are
/// unaffected, and never inspects or alters the assignment.
struct InstrumentedSolver {
    inner: Box<dyn AssignmentSolver>,
    solve_ns: telemetry::Histogram,
}

impl AssignmentSolver for InstrumentedSolver {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn solve(&self, costs: &SparseCostMatrix) -> Assignment {
        let _span = telemetry::span("solver", self.inner.name());
        let _timer = self.solve_ns.timer();
        self.inner.solve(costs)
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_km_matches_the_bare_hungarian_solver() {
        let mut costs = SparseCostMatrix::new(2, 3, 100.0);
        costs.set(0, 1, 5.0);
        costs.set(1, 0, 7.0);
        let via_trait = DenseKm.solve(&costs);
        let direct = hungarian::solve(&costs.to_dense());
        assert_eq!(via_trait, direct);
        assert_eq!(via_trait.matched_pairs(), 2);
        assert!((via_trait.total_cost - 12.0).abs() < 1e-9);
    }

    #[test]
    fn padding_fills_to_the_dense_matching_size() {
        let padded = pad_assignment(3, 2, 50.0, &[(1, 1, 7.0)]);
        assert_eq!(padded.matched_pairs(), 2);
        // Row 0 takes the first free column (0); row 2 stays unmatched.
        assert_eq!(padded.row_to_col, vec![Some(0), Some(1), None]);
        assert!((padded.total_cost - 57.0).abs() < 1e-9);
        assert!(padded.is_consistent());
    }

    #[test]
    fn padding_with_no_useful_pairs_is_all_default() {
        let padded = pad_assignment(2, 4, 9.0, &[]);
        assert_eq!(padded.matched_pairs(), 2);
        assert_eq!(padded.row_to_col, vec![Some(0), Some(1)]);
        assert!((padded.total_cost - 18.0).abs() < 1e-9);
    }

    #[test]
    fn auto_picks_the_solver_by_density_and_size() {
        // Tiny: dense regardless of density.
        let tiny = SparseCostMatrix::new(4, 4, 100.0);
        assert!(AutoKm::prefers_dense(&tiny));
        // Large and sparse: sparse KM.
        let mut sparse = SparseCostMatrix::new(40, 40, 100.0);
        for i in 0..40 {
            sparse.set(i, i, 1.0);
        }
        assert!(!AutoKm::prefers_dense(&sparse));
        // Large and ≥10% dense: dense KM.
        let mut dense = SparseCostMatrix::new(40, 40, 100.0);
        for r in 0..40 {
            for c in 0..5 {
                dense.set(r, (r + c) % 40, 1.0 + ((r + c) % 7) as f64);
            }
        }
        assert!(AutoKm::prefers_dense(&dense));
        // At-Ω entries are not useful edges and do not count as density.
        let mut padded = SparseCostMatrix::new(40, 40, 100.0);
        for r in 0..40 {
            for c in 0..8 {
                padded.set(r, (r + c) % 40, 100.0);
            }
        }
        assert!(!AutoKm::prefers_dense(&padded));
    }

    #[test]
    fn kind_names_round_trip_through_parse() {
        for kind in SolverKind::ALL {
            assert_eq!(SolverKind::parse(kind.name()), Some(kind));
            assert_eq!(SolverKind::parse(&kind.name().to_uppercase()), Some(kind));
            assert_eq!(SolverKind::parse(&kind.name().replace('-', "_")), Some(kind));
            assert_eq!(kind.build(2).name(), kind.name());
        }
        assert_eq!(SolverKind::parse("nope"), None);
    }

    #[test]
    fn every_kind_solves_a_small_instance_identically() {
        let mut costs = SparseCostMatrix::new(3, 3, 1000.0);
        costs.set(0, 0, 4.0);
        costs.set(0, 1, 1.0);
        costs.set(1, 0, 2.0);
        costs.set(2, 2, 5.0);
        for kind in SolverKind::ALL {
            let a = kind.build(2).solve(&costs);
            assert_eq!(a.matched_pairs(), 3, "{kind}");
            assert!((a.total_cost - 8.0).abs() < 1e-9, "{kind}: {}", a.total_cost);
        }
    }
}
