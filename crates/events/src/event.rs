//! The event algebra: everything that can disturb a running simulation.

use foodmatch_core::codec::{ByteReader, Codec, DecodeError};
use foodmatch_core::{OrderId, VehicleId};
use foodmatch_roadnet::{Duration, NodeId, TimePoint};
use serde::{Deserialize, Serialize};

/// Why a stretch of road got slower. Only used for reporting — the overlay
/// semantics are identical for every cause.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DisruptionCause {
    /// A traffic incident (accident, road works) around a location.
    Incident,
    /// Weather — typically city-wide and milder than an incident.
    Rain,
    /// An unexplained localized slowdown (event crowd, parade, …).
    Slowdown,
}

impl DisruptionCause {
    /// Human-readable label used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DisruptionCause::Incident => "incident",
            DisruptionCause::Rain => "rain",
            DisruptionCause::Slowdown => "slowdown",
        }
    }
}

/// A live edge-speed perturbation with a lifetime.
///
/// While active, every affected edge's travel time is multiplied by
/// `factor` (≥ 1 — disruptions make roads slower, never faster; this is what
/// lets the engine answer perturbed queries with a *bounded* overlay search
/// instead of an index rebuild).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficDisruption {
    /// What kind of disruption this is (reporting only).
    pub cause: DisruptionCause,
    /// Epicentre of the disruption; `None` means city-wide (rain surge).
    pub center: Option<NodeId>,
    /// Radius of the affected node neighbourhood around `center`, in meters
    /// (straight-line). Ignored for city-wide disruptions.
    pub radius_m: f64,
    /// Travel-time multiplier applied to affected edges.
    pub factor: f64,
    /// When the disruption clears.
    pub until: TimePoint,
}

impl TrafficDisruption {
    /// Creates a localized disruption around `center`.
    ///
    /// # Panics
    /// Panics if `factor < 1` or `radius_m` is not positive and finite.
    pub fn localized(
        cause: DisruptionCause,
        center: NodeId,
        radius_m: f64,
        factor: f64,
        until: TimePoint,
    ) -> Self {
        assert!(factor.is_finite() && factor >= 1.0, "disruption factor must be ≥ 1");
        assert!(radius_m.is_finite() && radius_m > 0.0, "disruption radius must be positive");
        TrafficDisruption { cause, center: Some(center), radius_m, factor, until }
    }

    /// Creates a city-wide disruption (e.g. a rain surge).
    ///
    /// # Panics
    /// Panics if `factor < 1`.
    pub fn city_wide(cause: DisruptionCause, factor: f64, until: TimePoint) -> Self {
        assert!(factor.is_finite() && factor >= 1.0, "disruption factor must be ≥ 1");
        TrafficDisruption { cause, center: None, radius_m: f64::INFINITY, factor, until }
    }
}

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A stretch of road network slows down until the disruption clears.
    Traffic(TrafficDisruption),
    /// The customer cancelled the order. Only effective before pickup: once
    /// the food is on a vehicle the platform completes the delivery.
    OrderCancelled {
        /// The cancelled order.
        order: OrderId,
    },
    /// The restaurant is running late: the order's preparation time grows by
    /// `extra`. Only effective before pickup.
    PrepDelay {
        /// The delayed order.
        order: OrderId,
        /// How much later the food will be ready.
        extra: Duration,
    },
    /// The driver ends their shift: the vehicle stops being offered to the
    /// dispatcher, its not-yet-picked-up orders re-enter the pool, and it
    /// finishes only the deliveries already on board.
    VehicleOffShift {
        /// The departing vehicle.
        vehicle: VehicleId,
    },
    /// A driver starts a shift at `location` (a brand-new vehicle id joins
    /// the fleet; a known id returns to duty at its current position).
    VehicleOnShift {
        /// The arriving vehicle.
        vehicle: VehicleId,
        /// Where the new vehicle enters the network (ignored for returning
        /// vehicles, which resume wherever they are).
        location: NodeId,
    },
}

/// Where an event lands when a city is partitioned into dispatch zones —
/// the routing classification a sharded dispatcher (one service per zone)
/// uses to decide which shards must see the event.
///
/// The scope is derived purely from the event payload; mapping it onto
/// concrete zones (bounding regions, order/vehicle ownership) is the
/// router's job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventScope {
    /// Affects the whole city (e.g. a rain surge): broadcast to every zone.
    CityWide,
    /// Affects a bounded neighbourhood around `center`: deliver to every
    /// zone whose region the circle of `radius_m` meters touches.
    Localized {
        /// Epicentre of the disruption.
        center: NodeId,
        /// Straight-line radius of the affected neighbourhood, in meters.
        radius_m: f64,
    },
    /// Targets a single order (cancellation, prep delay): deliver to the
    /// zone that owns the order.
    Order(OrderId),
    /// Targets a single vehicle (shift churn): deliver to the zone that owns
    /// the vehicle. `location` is where the event introduces the vehicle
    /// when it carries one (on-shift), letting a router place a brand-new
    /// vehicle by position.
    Vehicle {
        /// The targeted vehicle.
        vehicle: VehicleId,
        /// Where an on-shift event (re)introduces the vehicle, if anywhere.
        location: Option<NodeId>,
    },
}

/// One time-stamped simulation event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DisruptionEvent {
    /// When the event fires. The simulator applies events at the boundary of
    /// the accumulation window containing them.
    pub at: TimePoint,
    /// What happens.
    pub kind: EventKind,
}

impl DisruptionEvent {
    /// Creates an event.
    pub fn new(at: TimePoint, kind: EventKind) -> Self {
        DisruptionEvent { at, kind }
    }

    /// True for traffic perturbations (the events that touch the overlay).
    pub fn is_traffic(&self) -> bool {
        matches!(self.kind, EventKind::Traffic(_))
    }

    /// The zone-routing classification of this event (see [`EventScope`]).
    pub fn scope(&self) -> EventScope {
        match self.kind {
            EventKind::Traffic(disruption) => match disruption.center {
                None => EventScope::CityWide,
                Some(center) => EventScope::Localized { center, radius_m: disruption.radius_m },
            },
            EventKind::OrderCancelled { order } | EventKind::PrepDelay { order, .. } => {
                EventScope::Order(order)
            }
            EventKind::VehicleOffShift { vehicle } => {
                EventScope::Vehicle { vehicle, location: None }
            }
            EventKind::VehicleOnShift { vehicle, location } => {
                EventScope::Vehicle { vehicle, location: Some(location) }
            }
        }
    }
}

impl Codec for DisruptionCause {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DisruptionCause::Incident => 0,
            DisruptionCause::Rain => 1,
            DisruptionCause::Slowdown => 2,
        });
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match reader.take(1)?[0] {
            0 => Ok(DisruptionCause::Incident),
            1 => Ok(DisruptionCause::Rain),
            2 => Ok(DisruptionCause::Slowdown),
            tag => Err(DecodeError::Invalid(format!("unknown DisruptionCause tag {tag}"))),
        }
    }
}

impl Codec for TrafficDisruption {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cause.encode(out);
        self.center.encode(out);
        self.radius_m.encode(out);
        self.factor.encode(out);
        self.until.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let cause = DisruptionCause::decode(reader)?;
        let center = Option::<NodeId>::decode(reader)?;
        let radius_m = f64::decode(reader)?;
        let factor = f64::decode(reader)?;
        let until = TimePoint::decode(reader)?;
        // The same invariants `localized`/`city_wide` assert, as typed errors:
        // factor ≥ 1 always; a localized disruption needs a real radius (a
        // city-wide one carries +∞, which is fine — it is never compared).
        if !factor.is_finite() || factor < 1.0 {
            return Err(DecodeError::Invalid(format!(
                "TrafficDisruption factor must be finite and ≥ 1, got {factor}"
            )));
        }
        if center.is_some() && !(radius_m.is_finite() && radius_m > 0.0) {
            return Err(DecodeError::Invalid(format!(
                "localized TrafficDisruption radius must be positive and finite, got {radius_m}"
            )));
        }
        if center.is_none() && radius_m.is_nan() {
            return Err(DecodeError::Invalid(
                "city-wide TrafficDisruption radius must not be NaN".to_string(),
            ));
        }
        Ok(TrafficDisruption { cause, center, radius_m, factor, until })
    }
}

impl Codec for EventKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            EventKind::Traffic(disruption) => {
                out.push(0);
                disruption.encode(out);
            }
            EventKind::OrderCancelled { order } => {
                out.push(1);
                order.encode(out);
            }
            EventKind::PrepDelay { order, extra } => {
                out.push(2);
                order.encode(out);
                extra.encode(out);
            }
            EventKind::VehicleOffShift { vehicle } => {
                out.push(3);
                vehicle.encode(out);
            }
            EventKind::VehicleOnShift { vehicle, location } => {
                out.push(4);
                vehicle.encode(out);
                location.encode(out);
            }
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match reader.take(1)?[0] {
            0 => Ok(EventKind::Traffic(TrafficDisruption::decode(reader)?)),
            1 => Ok(EventKind::OrderCancelled { order: OrderId::decode(reader)? }),
            2 => Ok(EventKind::PrepDelay {
                order: OrderId::decode(reader)?,
                extra: Duration::decode(reader)?,
            }),
            3 => Ok(EventKind::VehicleOffShift { vehicle: VehicleId::decode(reader)? }),
            4 => Ok(EventKind::VehicleOnShift {
                vehicle: VehicleId::decode(reader)?,
                location: NodeId::decode(reader)?,
            }),
            tag => Err(DecodeError::Invalid(format!("unknown EventKind tag {tag}"))),
        }
    }
}

impl Codec for DisruptionEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        self.kind.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(DisruptionEvent { at: TimePoint::decode(reader)?, kind: EventKind::decode(reader)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate_factors() {
        let until = TimePoint::from_hms(13, 0, 0);
        let d =
            TrafficDisruption::localized(DisruptionCause::Incident, NodeId(3), 500.0, 2.0, until);
        assert_eq!(d.center, Some(NodeId(3)));
        let rain = TrafficDisruption::city_wide(DisruptionCause::Rain, 1.4, until);
        assert_eq!(rain.center, None);
        assert_eq!(rain.cause.name(), "rain");
    }

    #[test]
    #[should_panic(expected = "factor must be ≥ 1")]
    fn speedups_are_rejected() {
        let _ =
            TrafficDisruption::city_wide(DisruptionCause::Rain, 0.9, TimePoint::from_hms(13, 0, 0));
    }

    #[test]
    fn scope_classifies_every_event_kind() {
        let t = TimePoint::from_hms(12, 0, 0);
        let rain = DisruptionEvent::new(
            t,
            EventKind::Traffic(TrafficDisruption::city_wide(DisruptionCause::Rain, 1.3, t)),
        );
        assert_eq!(rain.scope(), EventScope::CityWide);

        let incident = DisruptionEvent::new(
            t,
            EventKind::Traffic(TrafficDisruption::localized(
                DisruptionCause::Incident,
                NodeId(7),
                800.0,
                2.0,
                t,
            )),
        );
        assert_eq!(incident.scope(), EventScope::Localized { center: NodeId(7), radius_m: 800.0 });

        let cancel = DisruptionEvent::new(t, EventKind::OrderCancelled { order: OrderId(4) });
        assert_eq!(cancel.scope(), EventScope::Order(OrderId(4)));
        let delay = DisruptionEvent::new(
            t,
            EventKind::PrepDelay { order: OrderId(5), extra: Duration::from_mins(5.0) },
        );
        assert_eq!(delay.scope(), EventScope::Order(OrderId(5)));

        let off = DisruptionEvent::new(t, EventKind::VehicleOffShift { vehicle: VehicleId(2) });
        assert_eq!(off.scope(), EventScope::Vehicle { vehicle: VehicleId(2), location: None });
        let on = DisruptionEvent::new(
            t,
            EventKind::VehicleOnShift { vehicle: VehicleId(3), location: NodeId(9) },
        );
        assert_eq!(
            on.scope(),
            EventScope::Vehicle { vehicle: VehicleId(3), location: Some(NodeId(9)) }
        );
    }

    #[test]
    fn every_event_kind_roundtrips_through_the_codec() {
        let t = TimePoint::from_hms(12, 0, 0);
        let events = [
            DisruptionEvent::new(
                t,
                EventKind::Traffic(TrafficDisruption::city_wide(DisruptionCause::Rain, 1.3, t)),
            ),
            DisruptionEvent::new(
                t,
                EventKind::Traffic(TrafficDisruption::localized(
                    DisruptionCause::Incident,
                    NodeId(7),
                    800.0,
                    2.0,
                    t,
                )),
            ),
            DisruptionEvent::new(t, EventKind::OrderCancelled { order: OrderId(4) }),
            DisruptionEvent::new(
                t,
                EventKind::PrepDelay { order: OrderId(5), extra: Duration::from_mins(5.0) },
            ),
            DisruptionEvent::new(t, EventKind::VehicleOffShift { vehicle: VehicleId(2) }),
            DisruptionEvent::new(
                t,
                EventKind::VehicleOnShift { vehicle: VehicleId(3), location: NodeId(9) },
            ),
        ];
        for event in events {
            let bytes = event.to_bytes();
            assert_eq!(DisruptionEvent::from_bytes(&bytes).unwrap(), event);
        }
    }

    #[test]
    fn codec_rejects_invalid_disruptions_with_typed_errors() {
        let t = TimePoint::from_hms(12, 0, 0);
        // A factor below 1 on the wire (constructed bytes, not a value the
        // constructors would admit).
        let mut bytes = Vec::new();
        DisruptionCause::Rain.encode(&mut bytes);
        Option::<NodeId>::None.encode(&mut bytes);
        f64::INFINITY.encode(&mut bytes);
        0.5f64.encode(&mut bytes);
        t.encode(&mut bytes);
        assert!(matches!(TrafficDisruption::from_bytes(&bytes), Err(DecodeError::Invalid(_))));
        // An unknown event tag.
        assert!(matches!(EventKind::from_bytes(&[9]), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn traffic_predicate_matches_kind() {
        let t = TimePoint::from_hms(12, 0, 0);
        let traffic = DisruptionEvent::new(
            t,
            EventKind::Traffic(TrafficDisruption::city_wide(DisruptionCause::Rain, 1.2, t)),
        );
        assert!(traffic.is_traffic());
        let cancel = DisruptionEvent::new(t, EventKind::OrderCancelled { order: OrderId(1) });
        assert!(!cancel.is_traffic());
    }
}
