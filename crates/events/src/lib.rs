//! # foodmatch-events
//!
//! The dynamic-events subsystem: a seeded, deterministic stream of
//! time-stamped simulation events that make the environment *move* under the
//! dispatcher, the way the paper's "dynamic road networks" do.
//!
//! The source paper refreshes edge travel times from live speeds as the day
//! unfolds; order streams churn (customers cancel, kitchens run late) and
//! fleets are not frozen at scenario start (drivers go on and off shift).
//! This crate models all of that as plain data:
//!
//! * [`DisruptionEvent`] — one time-stamped event: a [`TrafficDisruption`]
//!   (incident around a node neighbourhood, city-wide rain surge, localized
//!   slowdown), an order cancellation before pickup, a restaurant prep-time
//!   delay, or a vehicle going off/on shift.
//! * [`EventSchedule`] — a sorted event stream plus the state machine of
//!   *active* traffic disruptions. The simulator drains it at each
//!   accumulation window; when the active traffic set changes the schedule
//!   renders a fresh [`TrafficOverlay`](foodmatch_roadnet::TrafficOverlay)
//!   for the shortest-path engine — indexes are never rebuilt.
//!
//! Event *generation* (disruption profiles such as `calm`, `rainy_evening`,
//! `incident_heavy`) lives in `foodmatch-workload`, which knows the scenario
//! being disrupted; this crate only defines the event algebra and its
//! deterministic replay semantics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod schedule;

pub use event::{DisruptionCause, DisruptionEvent, EventKind, EventScope, TrafficDisruption};
pub use schedule::{EventSchedule, WindowEvents};
