//! Deterministic replay of an event stream.
//!
//! [`EventSchedule`] owns the sorted stream and the set of *currently
//! active* traffic disruptions. The simulator calls
//! [`EventSchedule::advance_to`] once per accumulation window; the call
//! returns the non-traffic events that fired (for the dispatcher to apply)
//! and whether the active traffic set changed (in which case the simulator
//! renders a fresh overlay via [`EventSchedule::overlay`] and installs it on
//! the engine).
//!
//! Replay is deterministic: events are ordered by timestamp with ties broken
//! by their position in the input stream, and no wall-clock or randomness is
//! involved.

use crate::event::{DisruptionEvent, EventKind, TrafficDisruption};
use foodmatch_roadnet::{RoadNetwork, TimePoint, TrafficOverlay};

/// The outcome of advancing a schedule to a window boundary.
#[derive(Clone, Debug, Default)]
pub struct WindowEvents {
    /// Non-traffic events that fired, in deterministic stream order.
    pub fired: Vec<DisruptionEvent>,
    /// True when the set of active traffic disruptions changed (a disruption
    /// started or cleared), i.e. when the engine's overlay must be replaced.
    pub traffic_changed: bool,
}

/// A sorted stream of [`DisruptionEvent`]s plus the active-traffic state
/// machine.
#[derive(Clone, Debug)]
pub struct EventSchedule {
    /// All events, sorted by `(at, input position)`.
    events: Vec<DisruptionEvent>,
    /// Index of the next event to fire.
    cursor: usize,
    /// Traffic disruptions currently in force.
    active: Vec<TrafficDisruption>,
}

impl EventSchedule {
    /// Creates a schedule from events in any order (sorted internally; ties
    /// keep their input order, so generation order is replay order).
    pub fn new(mut events: Vec<DisruptionEvent>) -> Self {
        // Stable sort: ties keep their input order.
        events.sort_by_key(|e| e.at);
        EventSchedule { events, cursor: 0, active: Vec::new() }
    }

    /// Total number of events in the stream (fired or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the stream holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The full sorted stream.
    pub fn events(&self) -> &[DisruptionEvent] {
        &self.events
    }

    /// True while at least one traffic disruption is in force.
    pub fn traffic_active(&self) -> bool {
        !self.active.is_empty()
    }

    /// The traffic disruptions currently in force.
    pub fn active_traffic(&self) -> &[TrafficDisruption] {
        &self.active
    }

    /// Advances the schedule to `now`: fires every event with `at <= now`
    /// (traffic events are absorbed into the active set, everything else is
    /// returned for the caller to apply) and expires active disruptions with
    /// `until <= now`.
    pub fn advance_to(&mut self, now: TimePoint) -> WindowEvents {
        let mut out = WindowEvents::default();
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            let event = self.events[self.cursor];
            self.cursor += 1;
            match event.kind {
                EventKind::Traffic(disruption) => {
                    // A disruption whose whole life fits inside one window
                    // never becomes visible.
                    if disruption.until > now {
                        self.active.push(disruption);
                        out.traffic_changed = true;
                    }
                }
                _ => out.fired.push(event),
            }
        }
        let before = self.active.len();
        self.active.retain(|d| d.until > now);
        if self.active.len() != before {
            out.traffic_changed = true;
        }
        out
    }

    /// Renders the active traffic set as a [`TrafficOverlay`] over `network`.
    ///
    /// A localized disruption affects every edge whose *both* endpoints lie
    /// within `radius_m` (straight-line) of its centre; a city-wide one
    /// affects every edge. Overlapping disruptions combine by taking the
    /// worst factor per edge.
    pub fn overlay(&self, network: &RoadNetwork) -> TrafficOverlay {
        let mut overlay = TrafficOverlay::new();
        for disruption in &self.active {
            match disruption.center {
                None => {
                    for eid in network.edge_ids() {
                        overlay.slow_edge(eid, disruption.factor);
                    }
                }
                Some(center) => {
                    let origin = network.position(center);
                    // Affected nodes first, then edges inside the set —
                    // O(V + E) per disruption.
                    let within: Vec<bool> = network
                        .node_ids()
                        .map(|n| network.position(n).distance_m(origin) <= disruption.radius_m)
                        .collect();
                    for eid in network.edge_ids() {
                        let e = network.edge(eid);
                        if within[e.from.index()] && within[e.to.index()] {
                            overlay.slow_edge(eid, disruption.factor);
                        }
                    }
                }
            }
        }
        overlay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DisruptionCause;
    use foodmatch_core::OrderId;
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::NodeId;

    fn t(h: u32, m: u32) -> TimePoint {
        TimePoint::from_hms(h, m, 0)
    }

    #[test]
    fn events_fire_in_timestamp_order_with_stable_ties() {
        let events = vec![
            DisruptionEvent::new(t(12, 10), EventKind::OrderCancelled { order: OrderId(2) }),
            DisruptionEvent::new(t(12, 5), EventKind::OrderCancelled { order: OrderId(1) }),
            DisruptionEvent::new(t(12, 10), EventKind::OrderCancelled { order: OrderId(3) }),
        ];
        let mut schedule = EventSchedule::new(events);
        assert_eq!(schedule.len(), 3);
        let first = schedule.advance_to(t(12, 7));
        assert_eq!(first.fired.len(), 1);
        let second = schedule.advance_to(t(12, 30));
        let ids: Vec<u64> = second
            .fired
            .iter()
            .map(|e| match e.kind {
                EventKind::OrderCancelled { order } => order.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![2, 3], "equal timestamps keep input order");
        // Draining again yields nothing.
        assert!(schedule.advance_to(t(23, 0)).fired.is_empty());
    }

    #[test]
    fn traffic_lifecycle_toggles_the_changed_flag() {
        let incident = TrafficDisruption::localized(
            DisruptionCause::Incident,
            NodeId(0),
            1_000.0,
            2.0,
            t(12, 45),
        );
        let mut schedule =
            EventSchedule::new(vec![DisruptionEvent::new(t(12, 10), EventKind::Traffic(incident))]);
        assert!(!schedule.traffic_active());
        let before = schedule.advance_to(t(12, 5));
        assert!(!before.traffic_changed);
        let start = schedule.advance_to(t(12, 15));
        assert!(start.traffic_changed && schedule.traffic_active());
        let steady = schedule.advance_to(t(12, 30));
        assert!(!steady.traffic_changed, "no change while the incident persists");
        let end = schedule.advance_to(t(12, 50));
        assert!(end.traffic_changed && !schedule.traffic_active());
    }

    #[test]
    fn disruption_contained_in_one_window_is_invisible() {
        let blip = TrafficDisruption::city_wide(DisruptionCause::Rain, 1.5, t(12, 2));
        let mut schedule =
            EventSchedule::new(vec![DisruptionEvent::new(t(12, 1), EventKind::Traffic(blip))]);
        let out = schedule.advance_to(t(12, 3));
        assert!(!out.traffic_changed);
        assert!(!schedule.traffic_active());
    }

    #[test]
    fn overlay_covers_the_neighbourhood_of_localized_disruptions() {
        let b = GridCityBuilder::new(6, 6).spacing_m(250.0);
        let net = b.build();
        let center = b.node_at(0, 0);
        let incident =
            TrafficDisruption::localized(DisruptionCause::Incident, center, 300.0, 2.0, t(13, 0));
        let mut schedule =
            EventSchedule::new(vec![DisruptionEvent::new(t(12, 0), EventKind::Traffic(incident))]);
        schedule.advance_to(t(12, 1));
        let overlay = schedule.overlay(&net);
        assert!(!overlay.is_empty());
        assert!(overlay.len() < net.edge_count(), "a 300 m radius must stay local");
        // Every perturbed edge has both endpoints near the centre.
        let origin = net.position(center);
        for eid in net.edge_ids() {
            if overlay.multiplier(eid) > 1.0 {
                let e = net.edge(eid);
                assert!(net.position(e.from).distance_m(origin) <= 300.0);
                assert!(net.position(e.to).distance_m(origin) <= 300.0);
            }
        }
    }

    #[test]
    fn city_wide_disruptions_cover_every_edge_and_combine_by_max() {
        let net = GridCityBuilder::new(4, 4).build();
        let rain = TrafficDisruption::city_wide(DisruptionCause::Rain, 1.4, t(14, 0));
        let incident = TrafficDisruption::localized(
            DisruptionCause::Incident,
            NodeId(0),
            10_000.0,
            2.5,
            t(14, 0),
        );
        let mut schedule = EventSchedule::new(vec![
            DisruptionEvent::new(t(12, 0), EventKind::Traffic(rain)),
            DisruptionEvent::new(t(12, 0), EventKind::Traffic(incident)),
        ]);
        schedule.advance_to(t(12, 5));
        assert_eq!(schedule.active_traffic().len(), 2);
        let overlay = schedule.overlay(&net);
        assert_eq!(overlay.len(), net.edge_count());
        // The incident blankets the whole grid, so max-combination wins
        // everywhere.
        for eid in net.edge_ids() {
            assert_eq!(overlay.multiplier(eid), 2.5);
        }
    }
}
