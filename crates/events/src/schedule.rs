//! Deterministic replay of an event stream.
//!
//! [`EventSchedule`] owns the sorted stream and the set of *currently
//! active* traffic disruptions. The simulator calls
//! [`EventSchedule::advance_to`] once per accumulation window; the call
//! returns the non-traffic events that fired (for the dispatcher to apply)
//! and whether the active traffic set changed (in which case the simulator
//! renders a fresh overlay via [`EventSchedule::overlay`] and installs it on
//! the engine).
//!
//! Replay is deterministic: events are ordered by timestamp with ties broken
//! by their position in the input stream, and no wall-clock or randomness is
//! involved.

use crate::event::{DisruptionEvent, EventKind, TrafficDisruption};
use foodmatch_core::codec::{ByteReader, Codec, DecodeError};
use foodmatch_roadnet::{EdgeId, RoadNetwork, TimePoint, TrafficOverlay};
use std::collections::{HashMap, HashSet};

/// The outcome of advancing a schedule to a window boundary.
#[derive(Clone, Debug, Default)]
pub struct WindowEvents {
    /// Non-traffic events that fired, in deterministic stream order.
    pub fired: Vec<DisruptionEvent>,
    /// True when the set of active traffic disruptions changed (a disruption
    /// started or cleared), i.e. when the engine's overlay must be replaced.
    pub traffic_changed: bool,
}

/// One disruption's rendered footprint, cached for incremental updates.
#[derive(Clone, Debug)]
struct RenderedDisruption {
    /// The disruption this footprint belongs to.
    disruption: TrafficDisruption,
    /// Every edge the disruption perturbs (its factor applies to all).
    edges: Vec<EdgeId>,
}

/// A sorted stream of [`DisruptionEvent`]s plus the active-traffic state
/// machine.
#[derive(Clone, Debug)]
pub struct EventSchedule {
    /// All events, sorted by `(at, input position)`.
    events: Vec<DisruptionEvent>,
    /// Index of the next event to fire.
    cursor: usize,
    /// Traffic disruptions currently in force.
    active: Vec<TrafficDisruption>,
    /// The disruptions whose footprints are folded into `edge_mult`, in the
    /// order they were active at the last [`render_overlay`](Self::render_overlay).
    rendered: Vec<RenderedDisruption>,
    /// Running per-edge worst multiplier of everything in `rendered`.
    edge_mult: HashMap<EdgeId, f64>,
}

impl EventSchedule {
    /// Creates a schedule from events in any order (sorted internally; ties
    /// keep their input order, so generation order is replay order).
    pub fn new(mut events: Vec<DisruptionEvent>) -> Self {
        // Stable sort: ties keep their input order.
        events.sort_by_key(|e| e.at);
        EventSchedule {
            events,
            cursor: 0,
            active: Vec::new(),
            rendered: Vec::new(),
            edge_mult: HashMap::new(),
        }
    }

    /// Streams one more event into the schedule, preserving the replay
    /// order: the event is inserted after every not-yet-fired event with an
    /// earlier-or-equal timestamp, so pushing events one by one yields
    /// exactly the order [`EventSchedule::new`] produces for the same
    /// stream. An event timestamped before the last
    /// [`advance_to`](Self::advance_to) cannot fire in the past; it is
    /// queued at the replay cursor and fires on the next advance.
    pub fn push(&mut self, event: DisruptionEvent) {
        let offset = self.events[self.cursor..].partition_point(|e| e.at <= event.at);
        self.events.insert(self.cursor + offset, event);
    }

    /// Total number of events in the stream (fired or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the stream holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The full sorted stream.
    pub fn events(&self) -> &[DisruptionEvent] {
        &self.events
    }

    /// True while at least one traffic disruption is in force.
    pub fn traffic_active(&self) -> bool {
        !self.active.is_empty()
    }

    /// The traffic disruptions currently in force.
    pub fn active_traffic(&self) -> &[TrafficDisruption] {
        &self.active
    }

    /// Advances the schedule to `now`: fires every event with `at <= now`
    /// (traffic events are absorbed into the active set, everything else is
    /// returned for the caller to apply) and expires active disruptions with
    /// `until <= now`.
    pub fn advance_to(&mut self, now: TimePoint) -> WindowEvents {
        let mut out = WindowEvents::default();
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            let event = self.events[self.cursor];
            self.cursor += 1;
            match event.kind {
                EventKind::Traffic(disruption) => {
                    // A disruption whose whole life fits inside one window
                    // never becomes visible.
                    if disruption.until > now {
                        self.active.push(disruption);
                        out.traffic_changed = true;
                    }
                }
                _ => out.fired.push(event),
            }
        }
        let before = self.active.len();
        self.active.retain(|d| d.until > now);
        if self.active.len() != before {
            out.traffic_changed = true;
        }
        out
    }

    /// Renders the active traffic set as a [`TrafficOverlay`] over `network`
    /// by rebuilding from scratch — `O(active × (V + E))`.
    ///
    /// A localized disruption affects every edge whose *both* endpoints lie
    /// within `radius_m` (straight-line) of its centre; a city-wide one
    /// affects every edge. Overlapping disruptions combine by taking the
    /// worst factor per edge.
    ///
    /// This is the reference renderer; the simulator uses the diff-based
    /// [`render_overlay`](Self::render_overlay), which debug-asserts
    /// agreement with this one on every call.
    pub fn overlay(&self, network: &RoadNetwork) -> TrafficOverlay {
        let mut overlay = TrafficOverlay::new();
        for disruption in &self.active {
            for eid in disruption_footprint(network, disruption) {
                overlay.slow_edge(eid, disruption.factor);
            }
        }
        overlay
    }

    /// Renders the active traffic set as a [`TrafficOverlay`] by applying
    /// only the *diffs* since the previous render: footprints of newly
    /// activated disruptions are folded in, footprints of expired ones are
    /// retired and only their edges re-maximised over the survivors. Steady
    /// churn therefore costs `O(changed footprints)` instead of
    /// `O(active × E)` per change.
    ///
    /// The rendered result is identical to [`overlay`](Self::overlay)
    /// (debug-asserted), so the two can be used interchangeably; only the
    /// incremental state kept between calls differs.
    pub fn render_overlay(&mut self, network: &RoadNetwork) -> TrafficOverlay {
        // Diff the previously rendered list against the active list. The
        // active list only ever drops entries (order-preserving retain) and
        // appends new ones, so a single forward walk aligns the two.
        let mut ai = 0usize;
        let mut kept: Vec<RenderedDisruption> = Vec::with_capacity(self.active.len());
        let mut expired: Vec<RenderedDisruption> = Vec::new();
        for entry in self.rendered.drain(..) {
            if ai < self.active.len() && entry.disruption == self.active[ai] {
                kept.push(entry);
                ai += 1;
            } else {
                expired.push(entry);
            }
        }
        self.rendered = kept;

        // Retire expired footprints: drop their edges, then re-maximise just
        // those edges over the surviving footprints.
        if !expired.is_empty() {
            let affected: HashSet<EdgeId> =
                expired.iter().flat_map(|e| e.edges.iter().copied()).collect();
            for eid in &affected {
                self.edge_mult.remove(eid);
            }
            for survivor in &self.rendered {
                for eid in &survivor.edges {
                    if affected.contains(eid) {
                        let slot = self.edge_mult.entry(*eid).or_insert(1.0);
                        *slot = slot.max(survivor.disruption.factor);
                    }
                }
            }
        }

        // Fold in newly activated footprints.
        for disruption in self.active[ai..].iter().copied() {
            let edges = disruption_footprint(network, &disruption);
            for &eid in &edges {
                let slot = self.edge_mult.entry(eid).or_insert(1.0);
                *slot = slot.max(disruption.factor);
            }
            self.rendered.push(RenderedDisruption { disruption, edges });
        }

        let mut overlay = TrafficOverlay::new();
        for (&eid, &factor) in &self.edge_mult {
            overlay.slow_edge(eid, factor);
        }
        debug_assert_eq!(
            overlay,
            self.overlay(network),
            "diffed overlay must agree with the full rebuild"
        );
        overlay
    }
}

/// The schedule's durable state is `(events, cursor, active)`. The
/// incremental render cache (`rendered`, `edge_mult`) is deliberately *not*
/// serialised: a decoded schedule starts with an empty cache, so the next
/// [`EventSchedule::render_overlay`] folds every active footprint in as new
/// — which produces exactly the same overlay as the cache would have
/// (debug-asserted against the full rebuild on every render).
impl Codec for EventSchedule {
    fn encode(&self, out: &mut Vec<u8>) {
        self.events.encode(out);
        self.cursor.encode(out);
        self.active.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let events = Vec::<DisruptionEvent>::decode(reader)?;
        let cursor = usize::decode(reader)?;
        let active = Vec::<TrafficDisruption>::decode(reader)?;
        if cursor > events.len() {
            return Err(DecodeError::Invalid(format!(
                "schedule cursor {cursor} beyond the {} events in the stream",
                events.len()
            )));
        }
        if events.windows(2).any(|pair| pair[0].at > pair[1].at) {
            return Err(DecodeError::Invalid(
                "schedule events are not sorted by timestamp".to_string(),
            ));
        }
        Ok(EventSchedule {
            events,
            cursor,
            active,
            rendered: Vec::new(),
            edge_mult: HashMap::new(),
        })
    }
}

/// The edges a single disruption perturbs: every edge for a city-wide
/// disruption, and every edge with *both* endpoints within `radius_m` of the
/// centre for a localized one — `O(V + E)`.
fn disruption_footprint(network: &RoadNetwork, disruption: &TrafficDisruption) -> Vec<EdgeId> {
    match disruption.center {
        None => network.edge_ids().collect(),
        Some(center) => {
            let origin = network.position(center);
            let within: Vec<bool> = network
                .node_ids()
                .map(|n| network.position(n).distance_m(origin) <= disruption.radius_m)
                .collect();
            network
                .edge_ids()
                .filter(|&eid| {
                    let e = network.edge(eid);
                    within[e.from.index()] && within[e.to.index()]
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DisruptionCause;
    use foodmatch_core::OrderId;
    use foodmatch_roadnet::generators::GridCityBuilder;
    use foodmatch_roadnet::NodeId;

    fn t(h: u32, m: u32) -> TimePoint {
        TimePoint::from_hms(h, m, 0)
    }

    #[test]
    fn pushing_one_by_one_matches_batch_construction() {
        let stream = vec![
            DisruptionEvent::new(t(12, 10), EventKind::OrderCancelled { order: OrderId(2) }),
            DisruptionEvent::new(t(12, 5), EventKind::OrderCancelled { order: OrderId(1) }),
            DisruptionEvent::new(t(12, 10), EventKind::OrderCancelled { order: OrderId(3) }),
            DisruptionEvent::new(t(12, 7), EventKind::OrderCancelled { order: OrderId(4) }),
        ];
        let batch = EventSchedule::new(stream.clone());
        let mut streamed = EventSchedule::new(Vec::new());
        for event in stream {
            streamed.push(event);
        }
        assert_eq!(batch.events(), streamed.events());
    }

    #[test]
    fn pushing_into_the_past_queues_at_the_replay_cursor() {
        let mut schedule = EventSchedule::new(vec![DisruptionEvent::new(
            t(12, 20),
            EventKind::OrderCancelled { order: OrderId(1) },
        )]);
        assert!(schedule.advance_to(t(12, 10)).fired.is_empty());
        // A late ingest timestamped before the cursor fires next advance,
        // ahead of the later-stamped order-1 event.
        schedule
            .push(DisruptionEvent::new(t(12, 0), EventKind::OrderCancelled { order: OrderId(9) }));
        let fired = schedule.advance_to(t(12, 30)).fired;
        let ids: Vec<u64> = fired
            .iter()
            .map(|e| match e.kind {
                EventKind::OrderCancelled { order } => order.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![9, 1]);
    }

    #[test]
    fn events_fire_in_timestamp_order_with_stable_ties() {
        let events = vec![
            DisruptionEvent::new(t(12, 10), EventKind::OrderCancelled { order: OrderId(2) }),
            DisruptionEvent::new(t(12, 5), EventKind::OrderCancelled { order: OrderId(1) }),
            DisruptionEvent::new(t(12, 10), EventKind::OrderCancelled { order: OrderId(3) }),
        ];
        let mut schedule = EventSchedule::new(events);
        assert_eq!(schedule.len(), 3);
        let first = schedule.advance_to(t(12, 7));
        assert_eq!(first.fired.len(), 1);
        let second = schedule.advance_to(t(12, 30));
        let ids: Vec<u64> = second
            .fired
            .iter()
            .map(|e| match e.kind {
                EventKind::OrderCancelled { order } => order.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![2, 3], "equal timestamps keep input order");
        // Draining again yields nothing.
        assert!(schedule.advance_to(t(23, 0)).fired.is_empty());
    }

    #[test]
    fn traffic_lifecycle_toggles_the_changed_flag() {
        let incident = TrafficDisruption::localized(
            DisruptionCause::Incident,
            NodeId(0),
            1_000.0,
            2.0,
            t(12, 45),
        );
        let mut schedule =
            EventSchedule::new(vec![DisruptionEvent::new(t(12, 10), EventKind::Traffic(incident))]);
        assert!(!schedule.traffic_active());
        let before = schedule.advance_to(t(12, 5));
        assert!(!before.traffic_changed);
        let start = schedule.advance_to(t(12, 15));
        assert!(start.traffic_changed && schedule.traffic_active());
        let steady = schedule.advance_to(t(12, 30));
        assert!(!steady.traffic_changed, "no change while the incident persists");
        let end = schedule.advance_to(t(12, 50));
        assert!(end.traffic_changed && !schedule.traffic_active());
    }

    #[test]
    fn disruption_contained_in_one_window_is_invisible() {
        let blip = TrafficDisruption::city_wide(DisruptionCause::Rain, 1.5, t(12, 2));
        let mut schedule =
            EventSchedule::new(vec![DisruptionEvent::new(t(12, 1), EventKind::Traffic(blip))]);
        let out = schedule.advance_to(t(12, 3));
        assert!(!out.traffic_changed);
        assert!(!schedule.traffic_active());
    }

    #[test]
    fn overlay_covers_the_neighbourhood_of_localized_disruptions() {
        let b = GridCityBuilder::new(6, 6).spacing_m(250.0);
        let net = b.build();
        let center = b.node_at(0, 0);
        let incident =
            TrafficDisruption::localized(DisruptionCause::Incident, center, 300.0, 2.0, t(13, 0));
        let mut schedule =
            EventSchedule::new(vec![DisruptionEvent::new(t(12, 0), EventKind::Traffic(incident))]);
        schedule.advance_to(t(12, 1));
        let overlay = schedule.overlay(&net);
        assert!(!overlay.is_empty());
        assert!(overlay.len() < net.edge_count(), "a 300 m radius must stay local");
        // Every perturbed edge has both endpoints near the centre.
        let origin = net.position(center);
        for eid in net.edge_ids() {
            if overlay.multiplier(eid) > 1.0 {
                let e = net.edge(eid);
                assert!(net.position(e.from).distance_m(origin) <= 300.0);
                assert!(net.position(e.to).distance_m(origin) <= 300.0);
            }
        }
    }

    #[test]
    fn incremental_render_tracks_the_full_rebuild_through_a_lifecycle() {
        let b = GridCityBuilder::new(6, 6).spacing_m(250.0);
        let net = b.build();
        let incident_a = TrafficDisruption::localized(
            DisruptionCause::Incident,
            b.node_at(0, 0),
            400.0,
            2.0,
            t(12, 30),
        );
        let incident_b = TrafficDisruption::localized(
            DisruptionCause::Incident,
            b.node_at(5, 5),
            400.0,
            3.0,
            t(13, 0),
        );
        let rain = TrafficDisruption::city_wide(DisruptionCause::Rain, 1.4, t(13, 30));
        let mut schedule = EventSchedule::new(vec![
            DisruptionEvent::new(t(12, 0), EventKind::Traffic(incident_a)),
            DisruptionEvent::new(t(12, 10), EventKind::Traffic(incident_b)),
            DisruptionEvent::new(t(12, 40), EventKind::Traffic(rain)),
        ]);
        // Walk the whole lifecycle: 2 activations, an overlapping city-wide
        // activation, then staggered expiries down to empty. At every step
        // the diffed render must equal the from-scratch rebuild.
        for minutes in [5, 15, 35, 45, 55, 65, 95] {
            schedule.advance_to(t(12, 0) + foodmatch_roadnet::Duration::from_mins(minutes as f64));
            let incremental = schedule.render_overlay(&net);
            let rebuilt = schedule.overlay(&net);
            assert_eq!(incremental, rebuilt, "diverged at +{minutes} min");
        }
        assert!(!schedule.traffic_active());
        assert!(schedule.render_overlay(&net).is_empty());
    }

    #[test]
    fn incremental_render_handles_skipped_renders() {
        // The simulator only renders when the active set changed, but the
        // diff must also absorb several changes batched between renders.
        let net = GridCityBuilder::new(4, 4).build();
        let first = TrafficDisruption::city_wide(DisruptionCause::Rain, 1.5, t(12, 10));
        let second = TrafficDisruption::localized(
            DisruptionCause::Incident,
            NodeId(5),
            10_000.0,
            2.5,
            t(12, 40),
        );
        let mut schedule = EventSchedule::new(vec![
            DisruptionEvent::new(t(12, 0), EventKind::Traffic(first)),
            DisruptionEvent::new(t(12, 20), EventKind::Traffic(second)),
        ]);
        schedule.advance_to(t(12, 5));
        // Skip rendering the first activation; advance through the first
        // expiry and the second activation, then render once.
        schedule.advance_to(t(12, 25));
        let overlay = schedule.render_overlay(&net);
        assert_eq!(overlay, schedule.overlay(&net));
        for eid in net.edge_ids() {
            assert_eq!(overlay.multiplier(eid), 2.5);
        }
    }

    #[test]
    fn decoded_schedule_resumes_mid_stream_with_equal_overlays() {
        let net = GridCityBuilder::new(4, 4).build();
        let rain = TrafficDisruption::city_wide(DisruptionCause::Rain, 1.4, t(13, 30));
        let mut schedule = EventSchedule::new(vec![
            DisruptionEvent::new(t(12, 0), EventKind::Traffic(rain)),
            DisruptionEvent::new(t(12, 20), EventKind::OrderCancelled { order: OrderId(1) }),
            DisruptionEvent::new(t(12, 40), EventKind::OrderCancelled { order: OrderId(2) }),
        ]);
        // Advance mid-stream (rain active, one cancellation fired) and
        // render once so the incremental cache is warm — the cache must not
        // leak into the encoding.
        schedule.advance_to(t(12, 25));
        let _ = schedule.render_overlay(&net);

        let mut restored = EventSchedule::from_bytes(&schedule.to_bytes()).unwrap();
        assert_eq!(restored.events(), schedule.events());
        assert_eq!(restored.active_traffic(), schedule.active_traffic());
        assert_eq!(restored.render_overlay(&net), schedule.render_overlay(&net));
        // Both fire the same remaining suffix.
        let a = schedule.advance_to(t(13, 0)).fired;
        let b = restored.advance_to(t(13, 0)).fired;
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn corrupt_schedule_bytes_yield_typed_errors() {
        let schedule = EventSchedule::new(vec![DisruptionEvent::new(
            t(12, 0),
            EventKind::OrderCancelled { order: OrderId(1) },
        )]);
        let bytes = schedule.to_bytes();
        // A cursor beyond the stream.
        let mut wrong = Vec::new();
        schedule.events().to_vec().encode(&mut wrong);
        5usize.encode(&mut wrong);
        Vec::<TrafficDisruption>::new().encode(&mut wrong);
        assert!(matches!(EventSchedule::from_bytes(&wrong), Err(DecodeError::Invalid(_))));
        // Truncation anywhere is an EOF, never a panic.
        for cut in 0..bytes.len() {
            assert!(EventSchedule::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn city_wide_disruptions_cover_every_edge_and_combine_by_max() {
        let net = GridCityBuilder::new(4, 4).build();
        let rain = TrafficDisruption::city_wide(DisruptionCause::Rain, 1.4, t(14, 0));
        let incident = TrafficDisruption::localized(
            DisruptionCause::Incident,
            NodeId(0),
            10_000.0,
            2.5,
            t(14, 0),
        );
        let mut schedule = EventSchedule::new(vec![
            DisruptionEvent::new(t(12, 0), EventKind::Traffic(rain)),
            DisruptionEvent::new(t(12, 0), EventKind::Traffic(incident)),
        ]);
        schedule.advance_to(t(12, 5));
        assert_eq!(schedule.active_traffic().len(), 2);
        let overlay = schedule.overlay(&net);
        assert_eq!(overlay.len(), net.edge_count());
        // The incident blankets the whole grid, so max-combination wins
        // everywhere.
        for eid in net.edge_ids() {
            assert_eq!(overlay.multiplier(eid), 2.5);
        }
    }
}
