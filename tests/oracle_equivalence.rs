//! Oracle equivalence and parallel-dispatch determinism.
//!
//! The dispatcher treats the four shortest-path backends as interchangeable,
//! so any divergence between them is silent data corruption: costs change,
//! matchings change, and no assertion in the higher layers would notice.
//! These tests pin the contract from the outside:
//!
//! * every backend answers `travel_time` and `travel_times_to_many`
//!   identically (including `None` for unreachable pairs) on seeded random
//!   networks across hour slots;
//! * `shortest_path` agrees across backends (CH answers it from the index by
//!   unpacking shortcuts — the only indexed backend that can);
//! * multi-threaded dispatch (`DispatchConfig::num_threads > 1`) produces
//!   bit-for-bit the same assignments and simulation metrics as the serial
//!   path.

use foodmatch_core::batching::singleton_batches;
use foodmatch_core::{
    build_food_graph, DispatchConfig, DispatchPolicy, FoodMatchPolicy, Order, VehicleSnapshot,
    WindowSnapshot,
};
use foodmatch_roadnet::generators::RandomCityBuilder;
use foodmatch_roadnet::graph::RoadNetworkBuilder;
use foodmatch_roadnet::{
    EngineKind, GeoPoint, NodeId, RoadClass, RoadNetwork, ShortestPathEngine, TimePoint,
};
use foodmatch_sim::Simulation;
use foodmatch_workload::{CityId, Scenario, ScenarioOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded sample of node pairs, deliberately including self-pairs.
fn sample_pairs(network: &RoadNetwork, seed: u64, count: usize) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = network.node_count() as u32;
    let mut pairs: Vec<(NodeId, NodeId)> = (0..count)
        .map(|_| (NodeId(rng.random_range(0..n)), NodeId(rng.random_range(0..n))))
        .collect();
    pairs.push((NodeId(0), NodeId(0)));
    pairs
}

fn assert_same_duration(
    expected: Option<foodmatch_roadnet::Duration>,
    got: Option<foodmatch_roadnet::Duration>,
    context: &str,
) {
    match (expected, got) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert!((a.as_secs_f64() - b.as_secs_f64()).abs() < 1e-6, "{context}: {a:?} vs {b:?}")
        }
        other => panic!("{context}: reachability mismatch {other:?}"),
    }
}

#[test]
fn all_backends_agree_on_seeded_random_networks() {
    for (nodes, seed, hour) in [(60usize, 11u64, 13u32), (90, 23, 20), (45, 5, 4)] {
        let network = RandomCityBuilder::new(nodes).seed(seed).build();
        let t = TimePoint::from_hms(hour, 10, 0);
        let reference = ShortestPathEngine::dijkstra(network.clone());
        let others: Vec<ShortestPathEngine> = EngineKind::ALL
            .into_iter()
            .filter(|&k| k != EngineKind::Dijkstra)
            .map(|k| ShortestPathEngine::new(network.clone(), k))
            .collect();
        for (a, b) in sample_pairs(&network, seed ^ 0xD15_BA7C4, 80) {
            let expected = reference.travel_time(a, b, t);
            for engine in &others {
                assert_same_duration(
                    expected,
                    engine.travel_time(a, b, t),
                    &format!("{nodes} nodes seed {seed}: {a}->{b} with {:?}", engine.kind()),
                );
            }
        }
    }
}

#[test]
fn all_backends_agree_on_one_to_many_including_unreachable() {
    // A network with a deliberately unreachable island: two clusters with a
    // one-way bridge, so some pairs are reachable in one direction only.
    let mut b = RoadNetworkBuilder::new();
    let mut nodes = Vec::new();
    for i in 0..10 {
        nodes.push(b.add_node(GeoPoint::new(0.0, 0.01 * f64::from(i))));
    }
    for w in nodes.windows(2).take(4) {
        b.add_bidirectional(w[0], w[1], 400.0, RoadClass::Local);
    }
    for w in nodes.windows(2).skip(5) {
        b.add_bidirectional(w[0], w[1], 400.0, RoadClass::Local);
    }
    // One-way bridge from the first cluster into the second.
    b.add_edge(nodes[4], nodes[5], 600.0, RoadClass::Arterial);
    let network = b.build();

    let t = TimePoint::from_hms(12, 0, 0);
    let targets: Vec<NodeId> = network.node_ids().collect();
    let reference = ShortestPathEngine::dijkstra(network.clone());
    for kind in EngineKind::ALL {
        let engine = ShortestPathEngine::new(network.clone(), kind);
        for &source in &targets {
            let expected = reference.travel_times_to_many(source, &targets, t);
            let got = engine.travel_times_to_many(source, &targets, t);
            for (i, &target) in targets.iter().enumerate() {
                assert_same_duration(
                    expected[i],
                    got[i],
                    &format!("{source}->{target} with {kind:?}"),
                );
            }
        }
    }
    // Sanity: the island structure really produces unreachable pairs.
    assert_eq!(reference.travel_time(nodes[9], nodes[0], t), None);
    assert!(reference.travel_time(nodes[0], nodes[9], t).is_some());
}

#[test]
fn shortest_path_agrees_across_backends() {
    let network = RandomCityBuilder::new(70).seed(31).build();
    let t = TimePoint::from_hms(13, 30, 0);
    let reference = ShortestPathEngine::dijkstra(network.clone());
    for kind in EngineKind::ALL {
        let engine = ShortestPathEngine::new(network.clone(), kind);
        for (a, b) in sample_pairs(&network, 7, 40) {
            let expected = reference.shortest_path(a, b, t);
            let got = engine.shortest_path(a, b, t);
            match (expected, got) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert!(
                        (x.travel_time.as_secs_f64() - y.travel_time.as_secs_f64()).abs() < 1e-6,
                        "{a}->{b} with {kind:?}: {x:?} vs {y:?}"
                    );
                    assert_eq!(y.nodes.first(), Some(&a), "{a}->{b} with {kind:?}");
                    assert_eq!(y.nodes.last(), Some(&b), "{a}->{b} with {kind:?}");
                }
                other => panic!("{a}->{b} with {kind:?}: {other:?}"),
            }
        }
    }
}

/// A mid-sized dispatch window over a generated city.
fn dispatch_window() -> (WindowSnapshot, ShortestPathEngine) {
    let scenario = Scenario::generate(
        CityId::A,
        ScenarioOptions {
            seed: 9,
            start: TimePoint::from_hms(12, 0, 0),
            end: TimePoint::from_hms(13, 0, 0),
            vehicle_fraction: 1.0,
        },
    );
    let t = TimePoint::from_hms(12, 30, 0);
    let orders: Vec<Order> = scenario.orders.iter().copied().take(24).collect();
    let vehicles: Vec<VehicleSnapshot> =
        scenario.vehicle_starts.iter().map(|&(id, node)| VehicleSnapshot::idle(id, node)).collect();
    let engine = ShortestPathEngine::cached(scenario.city.network.clone());
    (WindowSnapshot::new(t, orders, vehicles), engine)
}

#[test]
fn parallel_dispatch_matches_serial_assignments() {
    let (window, engine) = dispatch_window();
    let serial_config = DispatchConfig { num_threads: 1, ..Default::default() };
    let serial = FoodMatchPolicy::new().assign(&window, &engine, &serial_config);
    serial.validate(&window).unwrap();
    for num_threads in [2usize, 4, 8] {
        let config = DispatchConfig { num_threads, ..Default::default() };
        let parallel = FoodMatchPolicy::new().assign(&window, &engine, &config);
        parallel.validate(&window).unwrap();
        assert_eq!(
            serial.assignments, parallel.assignments,
            "num_threads = {num_threads} diverged from serial"
        );
        assert_eq!(serial.unassigned, parallel.unassigned);
    }
}

#[test]
fn parallel_foodgraph_matches_serial_bit_for_bit() {
    let (window, engine) = dispatch_window();
    let t = window.time;
    let batches = singleton_batches(&window.orders, &engine, t).batches;
    let serial_config = DispatchConfig { num_threads: 1, ..Default::default() };
    let serial = build_food_graph(&batches, &window.vehicles, &engine, t, &serial_config);
    let parallel_config = DispatchConfig { num_threads: 4, ..Default::default() };
    let parallel = build_food_graph(&batches, &window.vehicles, &engine, t, &parallel_config);
    assert_eq!(serial.evaluations, parallel.evaluations);
    let dense_serial = serial.costs.to_dense();
    let dense_parallel = parallel.costs.to_dense();
    for r in 0..batches.len() {
        for c in 0..window.vehicles.len() {
            assert_eq!(
                dense_serial.get(r, c).to_bits(),
                dense_parallel.get(r, c).to_bits(),
                "cost ({r},{c}) differs between serial and parallel construction"
            );
        }
    }
}

#[test]
fn parallel_simulation_reproduces_serial_metrics() {
    let scenario = Scenario::generate(
        CityId::GrubHub,
        ScenarioOptions {
            seed: 4,
            start: TimePoint::from_hms(12, 0, 0),
            end: TimePoint::from_hms(12, 45, 0),
            vehicle_fraction: 1.0,
        },
    );
    let run = |num_threads: usize| {
        let config = DispatchConfig { num_threads, ..scenario.default_config() };
        let engine = ShortestPathEngine::cached(scenario.city.network.clone());
        let simulation = Simulation::new(
            engine,
            scenario.orders.clone(),
            scenario.vehicle_starts.clone(),
            config,
            scenario.options.start,
            scenario.options.end,
        );
        simulation.run(&mut FoodMatchPolicy::new())
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.delivered.len(), parallel.delivered.len());
    assert_eq!(serial.rejected.len(), parallel.rejected.len());
    assert!((serial.total_xdt_hours() - parallel.total_xdt_hours()).abs() < 1e-9);
    assert!((serial.total_km() - parallel.total_km()).abs() < 1e-9);
}

/// Engines must count path queries like the other entry points (the fixed
/// `shortest_path` accounting), and the CH backend must answer them from the
/// index.
#[test]
fn every_backend_counts_path_queries() {
    let network = RandomCityBuilder::new(40).seed(2).build();
    let t = TimePoint::from_hms(12, 0, 0);
    let nodes: Vec<NodeId> = network.node_ids().collect();
    for kind in EngineKind::ALL {
        let engine = ShortestPathEngine::new(network.clone(), kind);
        let before = engine.query_count();
        let _ = engine.shortest_path(nodes[0], nodes[nodes.len() - 1], t);
        let _ = engine.travel_time(nodes[1], nodes[2], t);
        assert_eq!(engine.query_count(), before + 2, "kind {kind:?}");
    }
}
