//! Telemetry neutrality: recording must never change a dispatch outcome.
//!
//! Every instrumented layer re-runs its golden workload twice — once with
//! no recorder installed, once with a live [`foodmatch_telemetry`]
//! recorder — and the typed output streams and reports must match bit for
//! bit (after zeroing the wall-clock window fields, exactly as the
//! equivalence suites do). Three workloads cover the stack:
//!
//! * the bare [`DispatchService`] on a disruption-heavy lunch hour;
//! * a one-zone [`DispatchRouter`] over the same day;
//! * a four-thread multi-zone metro router (the parallel fan-out path,
//!   including the per-shard wall timing the recorder turns on).
//!
//! The live runs must also actually observe something: the trace has to
//! contain engine, solver, shard and service spans, and the registry has
//! to hold engine-query and solver-latency samples — a silently inert
//! recorder would make the equality above vacuous.
//!
//! This file stays a single sequential `#[test]`: the recorder is
//! process-global, so no other test in this binary may race an
//! install/uninstall cycle.

use foodmatch_core::PolicyKind;
use foodmatch_sim::{
    DispatchOutput, DispatchRouter, RoutedOutput, SimulationReport, ZoneId, ZoneMap,
};
use foodmatch_telemetry as telemetry;
use foodmatch_workload::{DisruptionPreset, MetroOptions, MetroScenario};
use integration_tests::tiny_scenario;
use std::collections::HashSet;

/// Zeroes the wall-clock-dependent window fields of a report.
fn normalized(mut report: SimulationReport) -> SimulationReport {
    for window in &mut report.windows {
        window.compute_secs = 0.0;
        window.overflown = false;
    }
    report
}

/// Zeroes the wall-clock-dependent fields inside a tagged output stream.
fn normalized_outputs(outputs: Vec<RoutedOutput>) -> Vec<(ZoneId, DispatchOutput)> {
    outputs
        .into_iter()
        .map(|o| match o.output {
            DispatchOutput::WindowClosed { mut stats } => {
                stats.compute_secs = 0.0;
                stats.overflown = false;
                (o.zone, DispatchOutput::WindowClosed { stats })
            }
            other => (o.zone, other),
        })
        .collect()
}

/// Same normalisation for an untagged service stream.
fn normalized_service_outputs(outputs: Vec<DispatchOutput>) -> Vec<DispatchOutput> {
    outputs
        .into_iter()
        .map(|output| match output {
            DispatchOutput::WindowClosed { mut stats } => {
                stats.compute_secs = 0.0;
                stats.overflown = false;
                DispatchOutput::WindowClosed { stats }
            }
            other => other,
        })
        .collect()
}

#[test]
fn telemetry_is_strictly_observational() {
    assert!(!telemetry::active(), "this test must own the global recorder");
    let recorder = telemetry::Recorder::new();

    // Each workload runs once bare and once under the live recorder; all
    // components are constructed inside the run closure, so the live pass
    // holds live handles end to end.

    // --- 1. bare service, disruption-heavy lunch hour -------------------
    let scenario = tiny_scenario(5);
    let network = scenario.city.network.clone();
    let events = DisruptionPreset::IncidentHeavy.builder(5).build(&scenario);
    assert!(!events.is_empty(), "the disruption profile must actually disrupt");
    let sim = scenario.into_simulation().with_events(events);

    let service_run = || {
        let mut policy = PolicyKind::FoodMatch.build();
        let mut service = sim.service(policy.as_mut());
        for order in &sim.orders {
            if order.placed_at >= sim.start && order.placed_at < sim.end {
                assert!(service.submit_order(*order).is_accepted());
            }
        }
        for &event in &sim.events {
            assert!(service.ingest_event(event).is_accepted());
        }
        let mut outputs = Vec::new();
        while !service.is_finished() {
            let tick = service.now() + service.config().accumulation_window;
            outputs.extend(service.advance_to(tick));
        }
        let report = service.report();
        (outputs, report)
    };
    let (bare_out, bare_report) = service_run();
    telemetry::install(recorder.clone());
    let (live_out, live_report) = service_run();
    telemetry::uninstall();
    assert!(
        live_out.iter().any(|o| matches!(o, DispatchOutput::Delivered { .. })),
        "the service day must deliver something"
    );
    assert_eq!(
        normalized_service_outputs(bare_out),
        normalized_service_outputs(live_out),
        "service: output stream must be identical with the recorder on"
    );
    assert_eq!(
        normalized(bare_report),
        normalized(live_report),
        "service: report must be identical with the recorder on"
    );

    // --- 2. one-zone router over the same day ---------------------------
    let router_run = || {
        let mut router = DispatchRouter::new(
            &network,
            ZoneMap::single(&network),
            sim.vehicle_starts.clone(),
            |_| PolicyKind::FoodMatch.build(),
            sim.config.clone(),
            sim.start,
            sim.end,
            sim.drain_limit,
        );
        for order in &sim.orders {
            if order.placed_at >= sim.start && order.placed_at < sim.end {
                assert!(router.submit_order(*order).is_accepted());
            }
        }
        for &event in &sim.events {
            assert!(router.ingest_event(event).is_accepted());
        }
        let mut outputs = Vec::new();
        while !router.is_finished() {
            let tick = router.now() + router.config().accumulation_window;
            outputs.extend(router.advance_to(tick));
        }
        let report = router.report();
        (outputs, report.aggregate)
    };
    let (bare_out, bare_report) = router_run();
    telemetry::install(recorder.clone());
    let (live_out, live_report) = router_run();
    telemetry::uninstall();
    assert_eq!(
        normalized_outputs(bare_out),
        normalized_outputs(live_out),
        "one-zone router: output stream must be identical with the recorder on"
    );
    assert_eq!(
        normalized(bare_report),
        normalized(live_report),
        "one-zone router: report must be identical with the recorder on"
    );

    // --- 3. four-thread multi-zone metro router -------------------------
    let mut options = MetroOptions::lunch_peak(9);
    options.orders = 120;
    options.vehicles = 96;
    let metro = MetroScenario::generate(options);
    let metro_run = || {
        let config = foodmatch_core::DispatchConfig { num_threads: 4, ..metro.config() };
        let mut router = DispatchRouter::new(
            &metro.network,
            metro.zone_map(),
            metro.vehicle_starts.clone(),
            |_| PolicyKind::FoodMatch.build(),
            config,
            options.start,
            options.end,
            foodmatch_roadnet::Duration::from_hours(2.0),
        );
        for order in &metro.orders {
            assert!(router.submit_order(*order).is_accepted());
        }
        let mut outputs = Vec::new();
        while !router.is_finished() {
            let tick = router.now() + router.config().accumulation_window;
            outputs.extend(router.advance_to(tick));
        }
        let zones = router.report().zones;
        (outputs, zones)
    };
    let (bare_out, bare_zones) = metro_run();
    telemetry::install(recorder.clone());
    let (live_out, live_zones) = metro_run();
    telemetry::uninstall();
    let zones_seen: HashSet<ZoneId> = bare_out.iter().map(|o| o.zone).collect();
    assert!(zones_seen.len() > 1, "the metro day must touch more than one zone");
    assert_eq!(
        normalized_outputs(bare_out),
        normalized_outputs(live_out),
        "metro router: output stream must be identical with the recorder on"
    );
    assert_eq!(bare_zones.len(), live_zones.len());
    for ((zone_a, report_a), (zone_b, report_b)) in bare_zones.into_iter().zip(live_zones) {
        assert_eq!(zone_a, zone_b);
        assert_eq!(
            normalized(report_a),
            normalized(report_b),
            "{zone_a}: per-zone report must be identical with the recorder on"
        );
    }

    // --- the live runs must have observed the whole stack ---------------
    let categories: HashSet<&str> = recorder.trace.events().iter().map(|e| e.cat).collect();
    for cat in ["engine", "solver", "shard", "service"] {
        assert!(categories.contains(cat), "trace is missing {cat} spans: {categories:?}");
    }
    let snap = recorder.telemetry.snapshot();
    assert!(snap.counter("engine.queries").unwrap_or(0) > 0, "engine recorded no queries");
    assert!(snap.histogram_sum("matching.solve_ns.").count > 0, "no solver latency samples");
    assert!(
        snap.histogram("service.advance_ns").map_or(0, |h| h.count) > 0,
        "no service advance samples"
    );
    assert!(
        snap.histogram("router.shard_advance_ns").map_or(0, |h| h.count) > 0,
        "no per-shard advance samples"
    );
}
