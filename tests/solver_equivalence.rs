//! Cross-solver equivalence and determinism of the pluggable assignment
//! stack (seeded-RNG property loops, per the PR 1 testing conventions).
//!
//! The contract under test: every [`SolverKind`] returns an assignment of
//! `min(rows, cols)` pairs whose total cost equals the dense rectangular
//! Kuhn–Munkres optimum — exactly for the KM family on arbitrary real
//! costs, and exactly for the auction on integer costs (its ε-scaling
//! guarantee). `Decomposed<S>` must additionally be bit-identical for every
//! thread count.

use foodmatch_matching::{
    decompose, solve_hungarian, AssignmentSolver, Auction, Decomposed, DenseKm, SolverKind,
    SparseCostMatrix, SparseKm,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OMEGA: f64 = 7_200.0;

/// A random sparse instance; `integer` restricts costs to whole seconds so
/// the auction's exactness guarantee applies.
fn random_instance(rng: &mut StdRng, density: f64, integer: bool) -> SparseCostMatrix {
    let rows = rng.random_range(1..=10);
    let cols = rng.random_range(1..=10);
    let mut costs = SparseCostMatrix::new(rows, cols, OMEGA);
    for r in 0..rows {
        for c in 0..cols {
            if rng.random_range(0.0..1.0) < density {
                let cost = if integer {
                    rng.random_range(0..7_000) as f64
                } else {
                    rng.random_range(0.0..7_000.0)
                };
                costs.set(r, c, cost);
            }
        }
    }
    costs
}

fn assert_matches_dense(costs: &SparseCostMatrix, solver: &dyn AssignmentSolver, tol: f64) {
    let dense = solve_hungarian(&costs.to_dense());
    let solved = solver.solve(costs);
    assert!(
        (solved.total_cost - dense.total_cost).abs() <= tol,
        "{}: total {} vs dense {} on\n{}",
        solver.name(),
        solved.total_cost,
        dense.total_cost,
        costs.to_dense()
    );
    assert_eq!(solved.matched_pairs(), costs.rows().min(costs.cols()), "{}", solver.name());
    assert!(solved.is_consistent(), "{}", solver.name());
}

#[test]
fn km_family_agrees_with_dense_on_random_real_valued_instances() {
    let mut rng = StdRng::seed_from_u64(0xF00D_CAFE);
    let solvers: Vec<Box<dyn AssignmentSolver>> = vec![
        Box::new(SparseKm),
        Box::new(Decomposed::new(SparseKm).with_threads(2)),
        Box::new(Decomposed::new(DenseKm).with_threads(2)),
    ];
    for trial in 0..250usize {
        let density = [0.1, 0.3, 0.6][trial % 3];
        let costs = random_instance(&mut rng, density, false);
        for solver in &solvers {
            assert_matches_dense(&costs, solver.as_ref(), 1e-6);
        }
    }
}

#[test]
fn every_solver_kind_is_exact_on_random_integer_instances() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..150usize {
        let density = [0.15, 0.45, 0.8][trial % 3];
        let costs = random_instance(&mut rng, density, true);
        for kind in SolverKind::ALL {
            // Integer totals differ by >= 1, so 0.5 separates "picked an
            // optimal matching" from any suboptimal one for every solver,
            // including the ε-scaling auction.
            assert_matches_dense(&costs, kind.build(2).as_ref(), 0.5);
        }
    }
}

#[test]
fn rectangular_extremes_and_degenerate_shapes_agree() {
    let mut rng = StdRng::seed_from_u64(7_777);
    // Very wide and very tall shapes, fully dense and nearly empty.
    for &(rows, cols) in &[(1usize, 12usize), (12, 1), (2, 9), (9, 2), (8, 8)] {
        for density in [0.0, 1.0] {
            let mut costs = SparseCostMatrix::new(rows, cols, OMEGA);
            for r in 0..rows {
                for c in 0..cols {
                    if density == 1.0 {
                        costs.set(r, c, rng.random_range(0..5_000) as f64);
                    }
                }
            }
            for kind in SolverKind::ALL {
                assert_matches_dense(&costs, kind.build(3).as_ref(), 0.5);
            }
        }
    }
}

#[test]
fn all_omega_instances_reduce_to_pure_rejection_padding() {
    let costs = SparseCostMatrix::new(6, 4, OMEGA);
    assert!(decompose(&costs).is_empty());
    for kind in SolverKind::ALL {
        let solved = kind.build(2).solve(&costs);
        assert_eq!(solved.matched_pairs(), 4);
        assert!((solved.total_cost - 4.0 * OMEGA).abs() < 1e-9, "{kind}");
    }
}

#[test]
fn explicit_entries_at_omega_never_beat_rejection() {
    // Clamped FoodGraph edges can sit exactly at Ω; they are equivalent to
    // rejection and must not change any solver's total.
    let mut costs = SparseCostMatrix::new(3, 3, OMEGA);
    costs.set(0, 0, OMEGA);
    costs.set(1, 1, 120.0);
    costs.set(2, 1, 60.0);
    for kind in SolverKind::ALL {
        let solved = kind.build(2).solve(&costs);
        assert!((solved.total_cost - (60.0 + 2.0 * OMEGA)).abs() < 1e-6, "{kind}");
    }
}

#[test]
fn decomposed_solves_are_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for trial in 0..20usize {
        // Larger instances with block structure so several components exist.
        let blocks = 2 + trial % 4;
        let mut costs = SparseCostMatrix::new(blocks * 8, blocks * 6, OMEGA);
        for b in 0..blocks {
            for _ in 0..20 {
                let r = b * 8 + rng.random_range(0..8usize);
                let c = b * 6 + rng.random_range(0..6usize);
                costs.set(r, c, rng.random_range(0.0..6_000.0));
            }
        }
        assert!(decompose(&costs).len() >= 2, "block instance must decompose");
        for kind in [SolverKind::DecomposedSparseKm, SolverKind::DecomposedDenseKm] {
            let reference = kind.build(1).solve(&costs);
            for threads in [2, 3, 8, 17] {
                let solved = kind.build(threads).solve(&costs);
                assert_eq!(
                    solved, reference,
                    "{kind} with {threads} threads diverged on trial {trial}"
                );
            }
        }
    }
}

#[test]
fn component_sharding_partitions_rows_and_columns() {
    let mut rng = StdRng::seed_from_u64(31_337);
    for _ in 0..50 {
        let costs = random_instance(&mut rng, 0.2, false);
        let components = decompose(&costs);
        let mut seen_rows = vec![false; costs.rows()];
        let mut seen_cols = vec![false; costs.cols()];
        for component in &components {
            assert!(!component.rows.is_empty() && !component.cols.is_empty());
            assert!(component.edges() > 0, "components carry at least one finite edge");
            for &r in &component.rows {
                assert!(!seen_rows[r], "row {r} appears in two components");
                seen_rows[r] = true;
            }
            for &c in &component.cols {
                assert!(!seen_cols[c], "col {c} appears in two components");
                seen_cols[c] = true;
            }
            // The component's matrix holds exactly its global sub-matrix.
            for (lr, &gr) in component.rows.iter().enumerate() {
                for (lc, &gc) in component.cols.iter().enumerate() {
                    let global = costs.get(gr, gc);
                    let local = component.matrix.get(lr, lc);
                    if global < OMEGA {
                        assert_eq!(local, global);
                    } else {
                        assert_eq!(local, OMEGA, "cross entries stay at the default");
                    }
                }
            }
        }
        // Every finite edge lands in some component.
        for &(r, c, v) in costs.entries() {
            if v < OMEGA {
                assert!(seen_rows[r] && seen_cols[c]);
            }
        }
    }
}

#[test]
fn auction_stays_within_its_epsilon_bound_on_real_costs() {
    // On real-valued costs the auction is only ε-optimal; the bound is
    // participants·ε < 1 second, far below any meaningful dispatch cost.
    let mut rng = StdRng::seed_from_u64(424_242);
    for _ in 0..100 {
        let costs = random_instance(&mut rng, 0.4, false);
        let dense = solve_hungarian(&costs.to_dense());
        let solved = Auction::new().solve(&costs);
        assert!(solved.total_cost >= dense.total_cost - 1e-6, "auction can never beat the optimum");
        assert!(
            solved.total_cost - dense.total_cost < 1.0,
            "auction exceeded its ε bound: {} vs {}",
            solved.total_cost,
            dense.total_cost
        );
    }
}
