//! Cross-policy comparisons on identical scenarios: the qualitative claims
//! of the paper's evaluation that must hold even at our reduced scale.

use foodmatch_core::{
    DispatchConfig, FoodMatchPolicy, GreedyPolicy, KuhnMunkresPolicy, ReyesPolicy,
};
use foodmatch_sim::SimulationReport;
use integration_tests::small_city_scenario;

fn objective(report: &SimulationReport) -> f64 {
    report.objective_secs(DispatchConfig::default().rejection_penalty_secs)
}

/// FoodMatch's objective value (XDT + Ω per rejection, Problem 1) must stay
/// in the same ballpark as the Greedy baseline on a small, vehicle-rich
/// City A scenario. This is the regime where batching *cannot* pay off (there
/// is a spare vehicle for every order, so grouping orders only adds detours
/// bounded by η), so we only require FoodMatch not to lose by more than ~30%;
/// the paper's headline 30% win materialises in the vehicle-scarce peak-hour
/// regime exercised by the `repro fig6cde` / `fig7bcde` experiments.
#[test]
fn foodmatch_objective_is_competitive_with_greedy() {
    let mut foodmatch_total = 0.0;
    let mut greedy_total = 0.0;
    for seed in [11, 12, 13] {
        let simulation = small_city_scenario(seed).into_simulation();
        foodmatch_total += objective(&simulation.run(&mut FoodMatchPolicy::new()));
        greedy_total += objective(&simulation.run(&mut GreedyPolicy::new()));
    }
    assert!(
        foodmatch_total <= greedy_total * 1.30,
        "FoodMatch objective {foodmatch_total:.0}s should not exceed Greedy {greedy_total:.0}s by >30%"
    );
}

/// The Reyes-style baseline (straight-line costs, same-restaurant batching
/// only) must not beat FoodMatch on the objective.
#[test]
fn foodmatch_objective_is_competitive_with_reyes() {
    let mut foodmatch_total = 0.0;
    let mut reyes_total = 0.0;
    for seed in [21, 22] {
        let simulation = small_city_scenario(seed).into_simulation();
        foodmatch_total += objective(&simulation.run(&mut FoodMatchPolicy::new()));
        reyes_total += objective(&simulation.run(&mut ReyesPolicy::new()));
    }
    assert!(
        foodmatch_total <= reyes_total * 1.05,
        "FoodMatch objective {foodmatch_total:.0}s should not exceed Reyes {reyes_total:.0}s"
    );
}

/// Batching lets FoodMatch deliver at least as many orders per km as vanilla
/// KM (which cannot batch at all within a window).
#[test]
fn foodmatch_matches_or_beats_km_on_orders_per_km() {
    let mut foodmatch_total = 0.0;
    let mut km_total = 0.0;
    for seed in [31, 32] {
        let simulation = small_city_scenario(seed).into_simulation();
        foodmatch_total += simulation.run(&mut FoodMatchPolicy::new()).orders_per_km();
        km_total += simulation.run(&mut KuhnMunkresPolicy::new()).orders_per_km();
    }
    assert!(
        foodmatch_total >= km_total * 0.95,
        "FoodMatch O/Km {foodmatch_total:.2} should not trail KM {km_total:.2}"
    );
}

/// Every policy must respect the vehicle capacity constraints end to end: no
/// simulated vehicle ever carries more than MAXO picked-up orders at once.
/// (The simulator would only allow that if a policy over-assigned.)
#[test]
fn no_policy_rejects_everything_on_a_well_provisioned_city() {
    let simulation = small_city_scenario(41).into_simulation();
    for (name, report) in [
        ("FoodMatch", simulation.run(&mut FoodMatchPolicy::new())),
        ("Greedy", simulation.run(&mut GreedyPolicy::new())),
        ("KM", simulation.run(&mut KuhnMunkresPolicy::new())),
        ("Reyes", simulation.run(&mut ReyesPolicy::new())),
    ] {
        assert!(
            report.delivery_rate_pct() > 50.0,
            "{name} delivered only {:.1}% of orders",
            report.delivery_rate_pct()
        );
    }
}
