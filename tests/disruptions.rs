//! Integration tests for the dynamic-events subsystem: overlay-oracle
//! equivalence across every backend, deterministic replay of disrupted days,
//! cancellation invariants, and the acceptance check that a disrupted day
//! measurably changes policy metrics vs. the calm baseline.

use foodmatch_core::{DispatchConfig, FoodMatchPolicy, GreedyPolicy, PolicyKind};
use foodmatch_events::{
    DisruptionCause, DisruptionEvent, EventKind, EventSchedule, TrafficDisruption,
};
use foodmatch_roadnet::generators::GridCityBuilder;
use foodmatch_roadnet::{
    dijkstra, EngineKind, NodeId, RoadNetwork, RoadNetworkBuilder, ShortestPathEngine, TimePoint,
    TrafficOverlay,
};
use foodmatch_sim::{Simulation, SimulationReport};
use foodmatch_workload::DisruptionPreset;
use integration_tests::small_city_scenario;

/// Rebuilds `net` with every edge physically lengthened by its overlay
/// multiplier — the "from-scratch mutated graph" reference: plain Dijkstra
/// on it *is* the perturbed oracle.
fn rebuilt_with_overlay(net: &RoadNetwork, overlay: &TrafficOverlay) -> RoadNetwork {
    let mut b = RoadNetworkBuilder::new().congestion(net.congestion().clone());
    for node in net.node_ids() {
        b.add_node(net.position(node));
    }
    for eid in net.edge_ids() {
        let e = net.edge(eid);
        b.add_edge(e.from, e.to, e.length_m * overlay.multiplier(eid), e.class);
    }
    b.build()
}

/// Acceptance criterion: every backend answers perturbed-graph travel times
/// through the delta overlay exactly as a freshly built plain-Dijkstra
/// oracle on the mutated graph does.
#[test]
fn overlay_oracle_matches_rebuilt_graph_for_all_backends() {
    let b = GridCityBuilder::new(7, 7);
    let net = b.build();
    let t = TimePoint::from_hms(13, 0, 0);

    // A realistic overlay: one localized incident plus a city-wide surge,
    // rendered through the same EventSchedule machinery the simulator uses.
    let mut schedule = EventSchedule::new(vec![
        DisruptionEvent::new(
            TimePoint::from_hms(12, 50, 0),
            EventKind::Traffic(TrafficDisruption::localized(
                DisruptionCause::Incident,
                b.node_at(3, 3),
                600.0,
                2.8,
                TimePoint::from_hms(14, 0, 0),
            )),
        ),
        DisruptionEvent::new(
            TimePoint::from_hms(12, 55, 0),
            EventKind::Traffic(TrafficDisruption::city_wide(
                DisruptionCause::Rain,
                1.3,
                TimePoint::from_hms(15, 0, 0),
            )),
        ),
    ]);
    schedule.advance_to(t);
    let overlay = schedule.overlay(&net);
    assert!(!overlay.is_empty());

    let reference = rebuilt_with_overlay(&net, &overlay);
    for kind in EngineKind::ALL {
        let engine = ShortestPathEngine::new(net.clone(), kind);
        engine.set_overlay(overlay.clone());
        for source in net.node_ids().step_by(3) {
            let targets: Vec<NodeId> = net.node_ids().step_by(4).collect();
            let batch = engine.travel_times_to_many(source, &targets, t);
            for (i, &target) in targets.iter().enumerate() {
                let expected = dijkstra::shortest_travel_time(&reference, source, target, t);
                let got = engine.travel_time(source, target, t);
                match (expected, got, batch[i]) {
                    (None, None, None) => {}
                    (Some(want), Some(point), Some(many)) => {
                        assert!(
                            (want.as_secs_f64() - point.as_secs_f64()).abs() < 1e-6,
                            "{kind:?} {source}->{target}: {want:?} vs {point:?}"
                        );
                        assert!(
                            (want.as_secs_f64() - many.as_secs_f64()).abs() < 1e-6,
                            "{kind:?} {source}->{target} (to_many): {want:?} vs {many:?}"
                        );
                    }
                    other => panic!("{kind:?} {source}->{target}: {other:?}"),
                }
            }
        }
    }
}

fn disrupted_simulation(seed: u64, preset: DisruptionPreset, num_threads: usize) -> Simulation {
    let scenario = small_city_scenario(seed);
    let events = preset.builder(seed).build(&scenario);
    let config = DispatchConfig { num_threads, ..scenario.default_config() };
    let engine = ShortestPathEngine::cached(scenario.city.network.clone());
    Simulation::new(
        engine,
        scenario.orders.clone(),
        scenario.vehicle_starts.clone(),
        config,
        scenario.options.start,
        scenario.options.end,
    )
    .with_events(events)
}

/// The parts of a report that must replay bit-for-bit (wall-clock window
/// compute times are excluded — they are measurements, not simulation state).
fn assert_bit_identical(a: &SimulationReport, b: &SimulationReport) {
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.cancelled, b.cancelled);
    assert_eq!(a.undelivered, b.undelivered);
    assert_eq!(a.rejected_during_disruption, b.rejected_during_disruption);
    assert_eq!(a.distance_by_load_m, b.distance_by_load_m, "driven meters must match exactly");
    assert_eq!(a.waiting_by_slot, b.waiting_by_slot);
    assert_eq!(a.windows.len(), b.windows.len());
    for (wa, wb) in a.windows.iter().zip(&b.windows) {
        assert_eq!(wa.closed_at, wb.closed_at);
        assert_eq!(wa.orders, wb.orders);
        assert_eq!(wa.vehicles, wb.vehicles);
        assert_eq!(wa.assigned, wb.assigned);
        assert_eq!(wa.disrupted, wb.disrupted);
    }
}

/// Acceptance criterion: same seed + same thread count ⇒ bit-identical
/// reports with disruptions enabled — and the thread count itself must not
/// change the outcome either (the fan-out is deterministic).
#[test]
fn disrupted_runs_replay_bit_identically_across_thread_counts() {
    let serial_a = disrupted_simulation(3, DisruptionPreset::IncidentHeavy, 1)
        .run(&mut FoodMatchPolicy::new());
    let serial_b = disrupted_simulation(3, DisruptionPreset::IncidentHeavy, 1)
        .run(&mut FoodMatchPolicy::new());
    assert_bit_identical(&serial_a, &serial_b);

    let parallel_a = disrupted_simulation(3, DisruptionPreset::IncidentHeavy, 4)
        .run(&mut FoodMatchPolicy::new());
    let parallel_b = disrupted_simulation(3, DisruptionPreset::IncidentHeavy, 4)
        .run(&mut FoodMatchPolicy::new());
    assert_bit_identical(&parallel_a, &parallel_b);
    assert_bit_identical(&serial_a, &parallel_a);

    assert!(serial_a.disrupted_window_pct() > 0.0, "incidents should disrupt windows");
}

/// Acceptance criterion: a disrupted day measurably changes policy metrics
/// vs. the calm baseline.
#[test]
fn disrupted_day_measurably_changes_policy_metrics() {
    for policy in [PolicyKind::Greedy, PolicyKind::FoodMatch] {
        let calm = disrupted_simulation(3, DisruptionPreset::Calm, 1).run(policy.build().as_mut());
        let rainy =
            disrupted_simulation(3, DisruptionPreset::RainyEvening, 1).run(policy.build().as_mut());
        assert_eq!(calm.total_orders, rainy.total_orders, "same workload under both skies");
        assert!(calm.cancelled.is_empty());
        assert_eq!(calm.disrupted_window_pct(), 0.0);
        assert!(rainy.disrupted_window_pct() > 0.0, "{policy:?}: rain must reach the windows");
        assert!(
            rainy.total_xdt_hours() > calm.total_xdt_hours() + 1e-6,
            "{policy:?}: a city-wide slowdown must inflate XDT ({} vs {})",
            rainy.total_xdt_hours(),
            calm.total_xdt_hours()
        );
        assert!(
            rainy.xdt_hours_disrupted() > 0.0,
            "{policy:?}: XDT must be attributed to disruption windows"
        );
    }
}

/// Acceptance criterion: cancellation invariants. A cancelled order never
/// appears among the delivered, the fleet keeps serving the surviving
/// orders, and the report's totals stay consistent.
#[test]
fn cancellation_invariants_hold_under_churn() {
    let mut simulation = disrupted_simulation(3, DisruptionPreset::IncidentHeavy, 1);
    // On top of the preset's random churn, cancel the first two orders
    // explicitly (30 s after placement, guaranteed pre-pickup) so the test
    // can never go vacuous on an unlucky seed.
    let scenario = small_city_scenario(3);
    for order in scenario.orders.iter().take(2) {
        simulation.events.push(DisruptionEvent::new(
            order.placed_at + foodmatch_roadnet::Duration::from_secs_f64(30.0),
            EventKind::OrderCancelled { order: order.id },
        ));
    }
    let report = simulation.run(&mut GreedyPolicy::new());
    assert!(report.cancelled.len() >= 2, "expected cancellations from incident_heavy");
    for cancelled in &report.cancelled {
        assert!(
            !report.delivered.iter().any(|d| d.id == *cancelled),
            "cancelled order {cancelled} was delivered"
        );
        assert!(!report.rejected.contains(cancelled), "order {cancelled} double-accounted");
    }
    // No duplicate deliveries, and the four buckets partition the workload.
    let mut ids: Vec<u64> = report.delivered.iter().map(|d| d.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), report.delivered.len());
    assert_eq!(
        report.delivered.len()
            + report.rejected.len()
            + report.cancelled.len()
            + report.undelivered.len(),
        report.total_orders
    );
    assert!(
        report.delivered.len() > report.cancelled.len(),
        "the repaired routes must still serve the bulk of the workload"
    );
}
