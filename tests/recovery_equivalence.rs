//! Fault-injected recovery equivalence: a crash, a checkpoint restore and a
//! WAL-suffix replay must land on the exact run that never crashed.
//!
//! The acceptance check of the crash-safety layer. A scripted day — orders
//! streamed in just in time, disruption events, one `advance_to` per
//! accumulation window — is driven twice through a [`DurableDispatch`]:
//!
//! * **golden** — uninterrupted, start to drain;
//! * **crashed** — a [`FailPoint`] kills the run at a chosen WAL sequence
//!   (before the append, after it, or tearing the frame midway), then
//!   recovery reopens the log (truncating any tear), restores the latest
//!   on-disk checkpoint, replays the log suffix past the checkpoint's
//!   `wal_seq`, and the surviving process finishes the script.
//!
//! The recovered output stream — outputs emitted before the checkpoint,
//! plus the replayed suffix, plus the continuation — and the final report
//! must be bit-identical to the golden run (only the wall-clock window
//! fields `compute_secs`/`overflown` are normalised, as in
//! `tests/service_equivalence.rs`). Crash points cover mid-ingest, a window
//! boundary and late mid-day after the incidents have played through; the
//! property is pinned for all four policies on the bare [`DispatchService`]
//! and for the multi-zone [`DispatchRouter`] at one and four lockstep
//! threads.
//!
//! Group commit adds a second axis: under a batched [`FlushPolicy`] a crash
//! also loses the unflushed record group, so the durable log ends at a
//! *flush boundary* at or before the crash sequence. The script keeps op
//! index and WAL sequence aligned, so recovery replays to the boundary and
//! the continuation re-drives the lost ops — full-day equivalence then
//! holds for every flush policy, and
//! `recovery_lands_exactly_on_the_last_acked_flush_boundary` pins the
//! prefix-durability contract itself: with no re-driving at all, the
//! recovered state equals a fresh run of exactly the acked prefix.

use foodmatch_core::{DispatchConfig, DispatchPolicy, Order, PolicyKind};
use foodmatch_events::{DisruptionCause, DisruptionEvent, EventKind, TrafficDisruption};
use foodmatch_roadnet::{Duration, TimePoint};
use foodmatch_sim::{
    load_checkpoint, load_router_checkpoint, replay_wal, save_checkpoint, save_router_checkpoint,
    AdvanceOutcome, DispatchOutput, DispatchRouter, DispatchService, DurableDispatch, FailMode,
    FailPoint, FlushPolicy, RoutedOutput, ServiceCheckpoint, SimulationReport, WalError, WalTarget,
    WriteAheadLog, ZoneId,
};
use foodmatch_workload::{DisruptionPreset, MetroOptions, MetroScenario};
use integration_tests::tiny_scenario;
use std::path::{Path, PathBuf};

type DynPolicy = Box<dyn DispatchPolicy>;

/// One scripted dispatcher input. The script is fixed up front so the
/// golden run, the crashed run and the post-recovery continuation all see
/// the same input sequence — op index and WAL sequence number coincide.
#[derive(Clone, Copy, Debug)]
enum Op {
    Submit(Order),
    Ingest(DisruptionEvent),
    Advance(TimePoint),
}

/// Builds the scripted day: every event up front, then one accumulation
/// window per `Advance` with the orders of that window submitted just in
/// time before it.
fn build_script(
    orders: &[Order],
    events: &[DisruptionEvent],
    window: Duration,
    start: TimePoint,
    end: TimePoint,
    drain_end: TimePoint,
) -> Vec<Op> {
    let mut ops: Vec<Op> = events.iter().map(|&e| Op::Ingest(e)).collect();
    let eligible: Vec<Order> =
        orders.iter().copied().filter(|o| o.placed_at >= start && o.placed_at < end).collect();
    let mut submitted = vec![false; eligible.len()];
    let mut tick = start;
    while tick < drain_end {
        tick += window;
        if tick > drain_end {
            tick = drain_end;
        }
        for (i, order) in eligible.iter().enumerate() {
            if !submitted[i] && order.placed_at <= tick {
                submitted[i] = true;
                ops.push(Op::Submit(*order));
            }
        }
        ops.push(Op::Advance(tick));
    }
    assert!(submitted.iter().all(|&s| s), "every in-horizon order must be scripted");
    ops
}

/// Applies one scripted op through the durable wrapper, returning the
/// outputs it produced (submissions and ingests produce none).
fn apply_op<T: WalTarget>(
    durable: &mut DurableDispatch<T>,
    op: &Op,
) -> Result<Vec<T::Output>, WalError> {
    match op {
        Op::Submit(order) => durable.submit_order(*order).map(|_| Vec::new()),
        Op::Ingest(event) => durable.ingest_event(*event).map(|_| Vec::new()),
        Op::Advance(until) => durable.advance_to(*until).map(AdvanceOutcome::into_outputs),
    }
}

/// The uninterrupted golden run: the whole script through a fresh durable
/// dispatcher, returning its output stream and final dispatcher.
fn run_golden<T: WalTarget>(target: T, wal_path: &Path, ops: &[Op]) -> (Vec<T::Output>, T) {
    let mut durable = DurableDispatch::new(target, WriteAheadLog::create(wal_path).expect("wal"));
    let mut outputs = Vec::new();
    for op in ops {
        outputs.extend(apply_op(&mut durable, op).expect("golden run must not crash"));
    }
    let (target, _log) = durable.into_parts();
    (outputs, target)
}

/// The crashed run: drive the script into `crash`, checkpointing every
/// `ckpt_every_advance` windows (plus once at sequence zero), then recover —
/// reopen the WAL, restore the latest checkpoint via `restore`, replay the
/// suffix, and finish the script. Returns the recovered output stream
/// (pre-checkpoint prefix + replay + continuation) and the final
/// dispatcher.
#[allow(clippy::too_many_arguments)] // a test harness knob per crash axis
fn run_crashed_and_recover<T: WalTarget>(
    target: T,
    wal_path: &Path,
    ops: &[Op],
    flush: FlushPolicy,
    crash: FailPoint,
    ckpt_every_advance: usize,
    save: impl Fn(&T::Checkpoint),
    restore: impl FnOnce() -> (T, u64),
) -> (Vec<T::Output>, T) {
    let log = WriteAheadLog::create_with(wal_path, flush).expect("wal");
    let mut durable = DurableDispatch::new(target, log);
    durable.set_fail_point(Some(crash));
    save(&durable.checkpoint().expect("checkpoint is a flush barrier"));

    // Per-op outputs, indexed by WAL sequence, until the fail point fires.
    let mut per_op: Vec<Vec<T::Output>> = Vec::new();
    let mut advances = 0usize;
    let mut crashed = false;
    for op in ops {
        match apply_op(&mut durable, op) {
            Ok(outs) => {
                per_op.push(outs);
                if matches!(op, Op::Advance(_)) {
                    advances += 1;
                    if advances % ckpt_every_advance == 0 {
                        save(&durable.checkpoint().expect("checkpoint is a flush barrier"));
                    }
                }
            }
            Err(WalError::CrashInjected { .. }) => {
                crashed = true;
                break;
            }
            Err(e) => panic!("unexpected WAL error mid-script: {e}"),
        }
    }
    assert!(crashed, "the fail point at seq {} must fire", crash.at_seq);
    assert!(durable.is_crashed());
    assert!(
        matches!(durable.submit_order(ops_first_order(ops)), Err(WalError::Crashed)),
        "a crashed dispatcher must refuse further input"
    );
    drop(durable);

    // Recovery: reopen the log (truncating any torn tail), restore the
    // latest checkpoint, replay the suffix past its wal_seq.
    let (log, read) = WriteAheadLog::open(wal_path).expect("reopen the log after the crash");
    let resume_at = read.records.len();
    let (mut restored, ckpt_seq) = restore();
    let replayed = replay_wal(&mut restored, &read.records[ckpt_seq as usize..])
        .expect("replaying an intact suffix");

    // The recovered stream: everything durably emitted before the
    // checkpoint, the replayed span, then the continuation of the script
    // from the first op the log never saw.
    let mut outputs: Vec<T::Output> = per_op.drain(..ckpt_seq as usize).flatten().collect();
    outputs.extend(replayed);
    let mut durable = DurableDispatch::new(restored, log);
    for op in &ops[resume_at..] {
        outputs.extend(apply_op(&mut durable, op).expect("the recovered run must not crash"));
    }
    let (target, _log) = durable.into_parts();
    (outputs, target)
}

/// Any order from the script, for poking a crashed dispatcher.
fn ops_first_order(ops: &[Op]) -> Order {
    ops.iter()
        .find_map(|op| match op {
            Op::Submit(order) => Some(*order),
            _ => None,
        })
        .expect("the script submits at least one order")
}

/// The three crash points of the acceptance criterion, with all three fail
/// modes represented: a torn append mid-ingest (early, while demand is
/// streaming in), a durable-but-unapplied advance at a mid-day window
/// boundary, and a pre-append death late in the day, after the incident
/// events have played through.
fn crash_points(ops: &[Op]) -> Vec<FailPoint> {
    let submits: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Op::Submit(_)))
        .map(|(i, _)| i)
        .collect();
    let advances: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Op::Advance(_)))
        .map(|(i, _)| i)
        .collect();
    assert!(submits.len() >= 2 && advances.len() >= 4, "script too small to crash in");
    vec![
        FailPoint { at_seq: submits[1] as u64, mode: FailMode::TornAppend },
        FailPoint { at_seq: advances[advances.len() / 2] as u64, mode: FailMode::AfterAppend },
        FailPoint { at_seq: (ops.len() * 3 / 4) as u64, mode: FailMode::BeforeAppend },
    ]
}

/// Zeroes the wall-clock-dependent window fields of a report.
fn normalized(mut report: SimulationReport) -> SimulationReport {
    for window in &mut report.windows {
        window.compute_secs = 0.0;
        window.overflown = false;
    }
    report
}

/// Zeroes the wall-clock-dependent fields inside a service output stream.
fn normalized_outputs(mut outputs: Vec<DispatchOutput>) -> Vec<DispatchOutput> {
    for output in &mut outputs {
        if let DispatchOutput::WindowClosed { stats } = output {
            stats.compute_secs = 0.0;
            stats.overflown = false;
        }
    }
    outputs
}

/// Zeroes the wall-clock-dependent fields inside a routed output stream.
fn normalized_routed(mut outputs: Vec<RoutedOutput>) -> Vec<RoutedOutput> {
    for routed in &mut outputs {
        if let DispatchOutput::WindowClosed { stats } = &mut routed.output {
            stats.compute_secs = 0.0;
            stats.overflown = false;
        }
    }
    outputs
}

/// A scratch directory unique to one (test, tag) pair.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fm-recovery-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn service_recovery_is_bit_identical_for_all_policies_and_crash_points() {
    let scenario = tiny_scenario(5);
    let events = DisruptionPreset::IncidentHeavy.builder(5).build(&scenario);
    assert!(!events.is_empty(), "the disruption profile must actually disrupt");
    let sim = scenario.into_simulation().with_events(events);
    let ops = build_script(
        &sim.orders,
        &sim.events,
        sim.config.accumulation_window,
        sim.start,
        sim.end,
        sim.end + sim.drain_limit,
    );
    let crashes = crash_points(&ops);

    for kind in PolicyKind::ALL {
        let dir = scratch_dir(&format!("svc-{kind:?}"));
        let (golden_outputs, golden) =
            run_golden(sim.service::<DynPolicy>(kind.build()), &dir.join("golden.wal"), &ops);
        assert!(
            golden_outputs.iter().any(|o| matches!(o, DispatchOutput::Delivered { .. })),
            "{kind:?}: the golden day must deliver something"
        );
        let golden_outputs = normalized_outputs(golden_outputs);
        let golden_report = normalized(golden.report());

        for (i, &crash) in crashes.iter().enumerate() {
            let wal = dir.join(format!("crash-{i}.wal"));
            let ckpt = dir.join(format!("crash-{i}.ckpt"));
            let (outputs, recovered) = run_crashed_and_recover(
                sim.service::<DynPolicy>(kind.build()),
                &wal,
                &ops,
                FlushPolicy::EveryRecord,
                crash,
                3,
                |c: &ServiceCheckpoint| save_checkpoint(&ckpt, c).expect("save checkpoint"),
                || {
                    let c: ServiceCheckpoint = load_checkpoint(&ckpt).expect("load checkpoint");
                    let seq = c.wal_seq;
                    (DispatchService::restore(sim.engine.clone(), kind.build(), &c), seq)
                },
            );
            assert_eq!(
                normalized_outputs(outputs),
                golden_outputs,
                "{kind:?} crash {i} ({:?} at seq {}): recovered output stream must equal golden",
                crash.mode,
                crash.at_seq
            );
            assert_eq!(
                normalized(recovered.report()),
                golden_report,
                "{kind:?} crash {i} ({:?} at seq {}): recovered report must equal golden",
                crash.mode,
                crash.at_seq
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The metro day the router recovery tests run: a compact multi-zone
/// workload plus a mixed event script (city-wide rain, a zone-local
/// incident, order and fleet churn — every routing path of ingest_event).
fn metro_day(seed: u64) -> (MetroScenario, Vec<DisruptionEvent>, Vec<Op>) {
    let mut options = MetroOptions::lunch_peak(seed);
    options.orders = 90;
    options.vehicles = 72;
    let metro = MetroScenario::generate(options);
    let noon = options.start;
    let events = vec![
        DisruptionEvent::new(
            noon + Duration::from_mins(10.0),
            EventKind::Traffic(TrafficDisruption::city_wide(
                DisruptionCause::Rain,
                1.4,
                noon + Duration::from_mins(40.0),
            )),
        ),
        DisruptionEvent::new(
            noon + Duration::from_mins(15.0),
            EventKind::Traffic(TrafficDisruption::localized(
                DisruptionCause::Incident,
                metro.orders[0].restaurant,
                2_000.0,
                3.0,
                noon + Duration::from_mins(50.0),
            )),
        ),
        DisruptionEvent::new(
            noon + Duration::from_mins(20.0),
            EventKind::OrderCancelled { order: metro.orders[3].id },
        ),
        DisruptionEvent::new(
            noon + Duration::from_mins(25.0),
            EventKind::VehicleOffShift { vehicle: metro.vehicle_starts[0].0 },
        ),
    ];
    let config = metro.config();
    let drain = Duration::from_hours(2.0);
    let ops = build_script(
        &metro.orders,
        &events,
        config.accumulation_window,
        options.start,
        options.end,
        options.end + drain,
    );
    (metro, events, ops)
}

/// Builds a fresh multi-zone router for the metro day under `kind` with
/// `threads` lockstep threads.
fn metro_router(
    metro: &MetroScenario,
    kind: PolicyKind,
    threads: usize,
) -> DispatchRouter<DynPolicy> {
    let config = DispatchConfig { num_threads: threads, ..metro.config() };
    DispatchRouter::new(
        &metro.network,
        metro.zone_map(),
        metro.vehicle_starts.clone(),
        |_| kind.build(),
        config,
        metro.options.start,
        metro.options.end,
        Duration::from_hours(2.0),
    )
}

#[test]
fn router_recovery_is_bit_identical_at_one_and_four_threads() {
    let (metro, _events, ops) = metro_day(9);
    let crashes = crash_points(&ops);
    let kind = PolicyKind::FoodMatch;
    let mut golden_by_threads: Vec<Vec<RoutedOutput>> = Vec::new();

    for threads in [1usize, 4] {
        let dir = scratch_dir(&format!("router-t{threads}"));
        let (golden_outputs, golden) =
            run_golden(metro_router(&metro, kind, threads), &dir.join("golden.wal"), &ops);
        let zones_seen: std::collections::HashSet<ZoneId> =
            golden_outputs.iter().map(|o| o.zone).collect();
        assert!(zones_seen.len() > 1, "a metro day must touch more than one zone");
        let golden_outputs = normalized_routed(golden_outputs);
        let golden_report = golden.report();

        for (i, &crash) in crashes.iter().enumerate() {
            let wal = dir.join(format!("crash-{i}.wal"));
            let ckpt = dir.join(format!("crash-{i}.ckpt"));
            let (outputs, recovered) = run_crashed_and_recover(
                metro_router(&metro, kind, threads),
                &wal,
                &ops,
                FlushPolicy::EveryRecord,
                crash,
                2,
                |c| save_router_checkpoint(&ckpt, c).expect("save router checkpoint"),
                || {
                    let c = load_router_checkpoint(&ckpt).expect("load router checkpoint");
                    let seq = c.wal_seq;
                    let router = DispatchRouter::restore(
                        &metro.network,
                        metro.zone_map(),
                        |_| kind.build(),
                        &c,
                    )
                    .expect("restore router");
                    (router, seq)
                },
            );
            assert_eq!(
                normalized_routed(outputs),
                golden_outputs,
                "threads {threads} crash {i} ({:?} at seq {}): recovered routed stream must equal golden",
                crash.mode,
                crash.at_seq
            );
            let recovered_report = recovered.report();
            assert_eq!(
                normalized(recovered_report.aggregate),
                normalized(golden_report.aggregate.clone()),
                "threads {threads} crash {i}: recovered aggregate report must equal golden"
            );
            assert_eq!(recovered_report.zones.len(), golden_report.zones.len());
            for ((zone_a, report_a), (zone_b, report_b)) in
                recovered_report.zones.into_iter().zip(golden_report.zones.clone())
            {
                assert_eq!(zone_a, zone_b);
                assert_eq!(
                    normalized(report_a),
                    normalized(report_b),
                    "threads {threads} crash {i} {zone_a}: recovered zone report must equal golden"
                );
            }
        }
        golden_by_threads.push(golden_outputs);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Thread-count independence holds for the durable wrapper too.
    assert_eq!(
        golden_by_threads[0], golden_by_threads[1],
        "the golden durable stream must not depend on the thread count"
    );
}

#[test]
fn router_recovery_holds_for_every_policy() {
    let (metro, _events, ops) = metro_day(11);
    // One late crash point: mid-day, after the incidents have played
    // through — the deepest state a recovery has to reconstruct.
    let crash = FailPoint { at_seq: (ops.len() * 3 / 4) as u64, mode: FailMode::AfterAppend };

    for kind in PolicyKind::ALL {
        let dir = scratch_dir(&format!("router-{kind:?}"));
        let (golden_outputs, golden) =
            run_golden(metro_router(&metro, kind, 4), &dir.join("golden.wal"), &ops);
        let golden_outputs = normalized_routed(golden_outputs);
        let golden_report = normalized(golden.report().aggregate);

        let wal = dir.join("crash.wal");
        let ckpt = dir.join("crash.ckpt");
        let (outputs, recovered) = run_crashed_and_recover(
            metro_router(&metro, kind, 4),
            &wal,
            &ops,
            FlushPolicy::EveryRecord,
            crash,
            2,
            |c| save_router_checkpoint(&ckpt, c).expect("save router checkpoint"),
            || {
                let c = load_router_checkpoint(&ckpt).expect("load router checkpoint");
                let seq = c.wal_seq;
                let router =
                    DispatchRouter::restore(&metro.network, metro.zone_map(), |_| kind.build(), &c)
                        .expect("restore router");
                (router, seq)
            },
        );
        assert_eq!(
            normalized_routed(outputs),
            golden_outputs,
            "{kind:?}: recovered routed stream must equal golden"
        );
        assert_eq!(
            normalized(recovered.report().aggregate),
            golden_report,
            "{kind:?}: recovered aggregate report must equal golden"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The group-commit flush policies under test: a fixed record-count group,
/// the window-aligned flush, and a deadline that never fires inside the
/// scripted day (the worst case: everything since the last explicit flush
/// boundary is one crash away from vanishing).
fn group_commit_policies() -> Vec<FlushPolicy> {
    vec![
        FlushPolicy::EveryN(5),
        FlushPolicy::Window,
        FlushPolicy::Timed(std::time::Duration::from_secs(3600)),
    ]
}

#[test]
fn service_recovery_is_bit_identical_for_every_flush_policy() {
    // Full-day equivalence under group commit: the crash loses the
    // unflushed group, recovery replays to the flush boundary, and the
    // continuation re-drives the lost ops — landing on the golden day.
    let scenario = tiny_scenario(5);
    let events = DisruptionPreset::IncidentHeavy.builder(5).build(&scenario);
    let sim = scenario.into_simulation().with_events(events);
    let ops = build_script(
        &sim.orders,
        &sim.events,
        sim.config.accumulation_window,
        sim.start,
        sim.end,
        sim.end + sim.drain_limit,
    );
    let crashes = crash_points(&ops);
    let kind = PolicyKind::FoodMatch;

    let dir = scratch_dir("svc-flush");
    let (golden_outputs, golden) =
        run_golden(sim.service::<DynPolicy>(kind.build()), &dir.join("golden.wal"), &ops);
    let golden_outputs = normalized_outputs(golden_outputs);
    let golden_report = normalized(golden.report());

    for (p, &flush) in group_commit_policies().iter().enumerate() {
        for (i, &crash) in crashes.iter().enumerate() {
            let wal = dir.join(format!("crash-{p}-{i}.wal"));
            let ckpt = dir.join(format!("crash-{p}-{i}.ckpt"));
            let (outputs, recovered) = run_crashed_and_recover(
                sim.service::<DynPolicy>(kind.build()),
                &wal,
                &ops,
                flush,
                crash,
                3,
                |c: &ServiceCheckpoint| save_checkpoint(&ckpt, c).expect("save checkpoint"),
                || {
                    let c: ServiceCheckpoint = load_checkpoint(&ckpt).expect("load checkpoint");
                    let seq = c.wal_seq;
                    (DispatchService::restore(sim.engine.clone(), kind.build(), &c), seq)
                },
            );
            assert_eq!(
                normalized_outputs(outputs),
                golden_outputs,
                "{flush:?} crash {i} ({:?} at seq {}): recovered output stream must equal golden",
                crash.mode,
                crash.at_seq
            );
            assert_eq!(
                normalized(recovered.report()),
                golden_report,
                "{flush:?} crash {i} ({:?} at seq {}): recovered report must equal golden",
                crash.mode,
                crash.at_seq
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_lands_exactly_on_the_last_acked_flush_boundary() {
    // The prefix-durability contract itself, with no continuation to paper
    // over anything: after a crash under any flush policy, the durable log
    // ends at a flush boundary F ≤ crash seq, and checkpoint-restore +
    // replay reconstructs *exactly* the state and outputs of a fresh
    // (never-crashed, never-recovered) run of ops[..F]. The unacked suffix
    // may vanish; nothing torn or reordered survives.
    let scenario = tiny_scenario(5);
    let events = DisruptionPreset::IncidentHeavy.builder(5).build(&scenario);
    let sim = scenario.into_simulation().with_events(events);
    let ops = build_script(
        &sim.orders,
        &sim.events,
        sim.config.accumulation_window,
        sim.start,
        sim.end,
        sim.end + sim.drain_limit,
    );
    let kind = PolicyKind::FoodMatch;
    let at_seq = (ops.len() * 3 / 4) as u64;
    let mut policies = group_commit_policies();
    policies.insert(0, FlushPolicy::EveryRecord);

    for (p, &flush) in policies.iter().enumerate() {
        for (m, &mode) in
            [FailMode::BeforeAppend, FailMode::AfterAppend, FailMode::TornAppend].iter().enumerate()
        {
            let dir = scratch_dir(&format!("boundary-{p}-{m}"));
            let wal = dir.join("crash.wal");
            let ckpt = dir.join("crash.ckpt");

            // Drive into the crash, checkpointing every 3 windows.
            let log = WriteAheadLog::create_with(&wal, flush).expect("wal");
            let mut durable = DurableDispatch::new(sim.service::<DynPolicy>(kind.build()), log);
            durable.set_fail_point(Some(FailPoint { at_seq, mode }));
            save_checkpoint(&ckpt, &durable.checkpoint().expect("initial checkpoint"))
                .expect("save");
            let mut per_op: Vec<Vec<DispatchOutput>> = Vec::new();
            let mut advances = 0usize;
            for op in &ops {
                match apply_op(&mut durable, op) {
                    Ok(outs) => {
                        per_op.push(outs);
                        if matches!(op, Op::Advance(_)) {
                            advances += 1;
                            if advances % 3 == 0 {
                                let c = durable.checkpoint().expect("periodic checkpoint");
                                save_checkpoint(&ckpt, &c).expect("save");
                            }
                        }
                    }
                    Err(WalError::CrashInjected { .. }) => break,
                    Err(e) => panic!("unexpected WAL error mid-script: {e}"),
                }
            }
            drop(durable);

            // The durable log ends at a flush boundary no later than the
            // crash; the exact position depends on policy and fail mode.
            let (_log, read) = WriteAheadLog::open(&wal).expect("reopen");
            let boundary = read.records.len();
            match mode {
                FailMode::AfterAppend => assert_eq!(
                    boundary as u64,
                    at_seq + 1,
                    "{flush:?}: a durable crash record flushes its whole group"
                ),
                FailMode::TornAppend => assert_eq!(
                    boundary as u64, at_seq,
                    "{flush:?}: the torn record is dropped, its group survives"
                ),
                FailMode::BeforeAppend => {
                    assert!(boundary as u64 <= at_seq, "{flush:?}: nothing past the crash");
                    if flush == FlushPolicy::EveryRecord {
                        assert_eq!(boundary as u64, at_seq, "every record was acked");
                    }
                }
            }

            // Recover without continuing, and race it against a fresh run
            // of exactly the surviving prefix.
            let c: ServiceCheckpoint = load_checkpoint(&ckpt).expect("load checkpoint");
            let ckpt_seq = c.wal_seq;
            assert!(
                ckpt_seq as usize <= boundary,
                "{flush:?}: the checkpoint flush barrier keeps wal_seq within the durable log"
            );
            let mut recovered = DispatchService::restore(sim.engine.clone(), kind.build(), &c);
            let suffix = read.suffix_from(ckpt_seq).expect("the checkpoint anchors the suffix");
            let replayed = replay_wal(&mut recovered, suffix).expect("replaying an intact suffix");
            let mut outputs: Vec<DispatchOutput> =
                per_op.drain(..ckpt_seq as usize).flatten().collect();
            outputs.extend(replayed);

            let mut prefix = sim.service::<DynPolicy>(kind.build());
            let mut prefix_outputs = Vec::new();
            for op in &ops[..boundary] {
                match op {
                    Op::Submit(order) => {
                        let _ = prefix.submit_order(*order);
                    }
                    Op::Ingest(event) => {
                        let _ = prefix.ingest_event(*event);
                    }
                    Op::Advance(until) => {
                        prefix_outputs.extend(prefix.advance_to(*until).into_outputs())
                    }
                }
            }
            assert_eq!(
                normalized_outputs(outputs),
                normalized_outputs(prefix_outputs),
                "{flush:?} {mode:?}: recovered outputs must equal the acked-prefix run"
            );
            assert_eq!(
                normalized(recovered.report()),
                normalized(prefix.report()),
                "{flush:?} {mode:?}: recovered state must equal the acked-prefix run"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn router_recovery_holds_for_group_commit_policies_at_four_threads() {
    let (metro, _events, ops) = metro_day(13);
    // A pre-append death deep in the day: under group commit this also
    // discards the unflushed group, so recovery must rewind to the last
    // flush boundary and the continuation must re-drive the lost ops.
    let crash = FailPoint { at_seq: (ops.len() * 3 / 4) as u64, mode: FailMode::BeforeAppend };
    let kind = PolicyKind::FoodMatch;

    let dir = scratch_dir("router-flush");
    let (golden_outputs, golden) =
        run_golden(metro_router(&metro, kind, 4), &dir.join("golden.wal"), &ops);
    let golden_outputs = normalized_routed(golden_outputs);
    let golden_report = normalized(golden.report().aggregate);

    for (p, &flush) in [FlushPolicy::EveryN(5), FlushPolicy::Window].iter().enumerate() {
        let wal = dir.join(format!("crash-{p}.wal"));
        let ckpt = dir.join(format!("crash-{p}.ckpt"));
        let (outputs, recovered) = run_crashed_and_recover(
            metro_router(&metro, kind, 4),
            &wal,
            &ops,
            flush,
            crash,
            2,
            |c| save_router_checkpoint(&ckpt, c).expect("save router checkpoint"),
            || {
                let c = load_router_checkpoint(&ckpt).expect("load router checkpoint");
                let seq = c.wal_seq;
                let router =
                    DispatchRouter::restore(&metro.network, metro.zone_map(), |_| kind.build(), &c)
                        .expect("restore router");
                (router, seq)
            },
        );
        assert_eq!(
            normalized_routed(outputs),
            golden_outputs,
            "{flush:?}: recovered routed stream must equal golden"
        );
        assert_eq!(
            normalized(recovered.report().aggregate),
            golden_report,
            "{flush:?}: recovered aggregate report must equal golden"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
