//! Randomised tests for the core invariants the paper's algorithms rely on.
//!
//! These were originally property-based tests written with `proptest`; the
//! offline build environment cannot vendor proptest's macro stack, so each
//! property is exercised the same way with an explicit seeded-RNG case loop
//! (deterministic across runs, failures print the offending case).

use foodmatch_core::route::{plan_optimal_route, plan_optimal_route_free_start, PlannedOrder};
use foodmatch_core::{batch_orders, DispatchConfig, Order, OrderId};
use foodmatch_matching::{greedy, hungarian, CostMatrix};
use foodmatch_roadnet::generators::GridCityBuilder;
use foodmatch_roadnet::{
    angular_distance, dijkstra, CongestionProfile, GeoPoint, HourSlot, HubLabelIndex, NodeId,
    ShortestPathEngine, TimePoint,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property (matches the proptest configuration
/// this file previously used).
const CASES: usize = 48;

fn test_grid() -> (foodmatch_roadnet::RoadNetwork, GridCityBuilder) {
    let builder =
        GridCityBuilder::new(6, 6).congestion(CongestionProfile::metropolitan()).major_every(3);
    (builder.build(), builder)
}

/// Hungarian matching is optimal: no injection of the smaller side into the
/// larger achieves a lower total cost, and greedy never beats it.
#[test]
fn hungarian_is_optimal_and_beats_greedy() {
    let mut rng = StdRng::seed_from_u64(0xF00D_0001);
    for case in 0..CASES {
        let rows = rng.random_range(1usize..5);
        let cols = rng.random_range(1usize..5);
        let values: Vec<f64> = (0..25).map(|_| rng.random_range(0.0f64..500.0)).collect();
        let matrix = CostMatrix::from_fn(rows, cols, |r, c| values[(r * 5 + c) % values.len()]);
        let optimal = hungarian::solve(&matrix);
        let greedy = greedy::solve(&matrix);
        assert_eq!(optimal.matched_pairs(), rows.min(cols), "case {case}");
        assert!(
            optimal.total_cost <= greedy.total_cost + 1e-9,
            "case {case}: hungarian {} beaten by greedy {}",
            optimal.total_cost,
            greedy.total_cost
        );
        assert!(optimal.is_consistent(), "case {case}");

        // Exhaustive check against every injection of rows into columns.
        let smaller = rows.min(cols);
        let mut best = f64::INFINITY;
        let indices: Vec<usize> = (0..rows.max(cols)).collect();
        permute(&indices, smaller, &mut Vec::new(), &mut |perm| {
            let cost: f64 = perm
                .iter()
                .enumerate()
                .map(|(i, &j)| if rows <= cols { matrix.get(i, j) } else { matrix.get(j, i) })
                .sum();
            if cost < best {
                best = cost;
            }
        });
        assert!(
            (optimal.total_cost - best).abs() < 1e-6,
            "case {case}: hungarian {} vs exhaustive {best}",
            optimal.total_cost
        );
    }
}

/// Shortest-path travel times satisfy the triangle inequality and all
/// engines (Dijkstra, cached, hub labels) agree.
#[test]
fn shortest_paths_satisfy_triangle_inequality() {
    let (network, _) = test_grid();
    let engine = ShortestPathEngine::dijkstra(network.clone());
    // Hub labels depend only on the hour slot; build each of the 24 at most
    // once across the 48 cases.
    let mut labels_by_hour: std::collections::HashMap<u32, HubLabelIndex> =
        std::collections::HashMap::new();
    let mut rng = StdRng::seed_from_u64(0xF00D_0002);
    for case in 0..CASES {
        let hour = rng.random_range(0u32..24);
        let t = TimePoint::from_hms(hour, 15, 0);
        let labels = labels_by_hour
            .entry(hour)
            .or_insert_with(|| HubLabelIndex::build(&network, HourSlot::new(hour as u8)));
        let a = NodeId(rng.random_range(0u32..36));
        let b = NodeId(rng.random_range(0u32..36));
        let c = NodeId(rng.random_range(0u32..36));
        let ab = engine.travel_time(a, b, t).unwrap().as_secs_f64();
        let bc = engine.travel_time(b, c, t).unwrap().as_secs_f64();
        let ac = engine.travel_time(a, c, t).unwrap().as_secs_f64();
        assert!(
            ac <= ab + bc + 1e-6,
            "case {case}: triangle inequality violated: {ac} > {ab} + {bc}"
        );
        let hl_ab = labels.travel_time(a, b).unwrap().as_secs_f64();
        assert!((hl_ab - ab).abs() < 1e-6, "case {case}: hub labels disagree with dijkstra");
        // Dijkstra path reconstruction agrees with the distance.
        let path = dijkstra::shortest_path(&network, a, b, t).unwrap();
        assert!((path.travel_time.as_secs_f64() - ab).abs() < 1e-6, "case {case}");
    }
}

/// Angular distance is always within [0, 1].
#[test]
fn angular_distance_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xF00D_0003);
    for case in 0..CASES {
        let mut point =
            || GeoPoint::new(rng.random_range(-60.0f64..60.0), rng.random_range(-170.0f64..170.0));
        let d = angular_distance(point(), point(), point());
        assert!((0.0..=1.0).contains(&d), "case {case}: angular distance {d} out of range");
    }
}

/// The optimal route plan always respects pickup-before-drop-off and its
/// cost never beats the free-start plan for the same orders (Theorem 2's
/// building block).
#[test]
fn route_plans_respect_precedence_and_free_start_is_cheaper() {
    let (network, grid) = test_grid();
    let engine = ShortestPathEngine::cached(network);
    let t = TimePoint::from_hms(13, 0, 0);
    let mut rng = StdRng::seed_from_u64(0xF00D_0004);
    for case in 0..CASES {
        let order_count = rng.random_range(2usize..4);
        let orders: Vec<PlannedOrder> = (0..order_count)
            .map(|i| {
                let (r, c) = (rng.random_range(0usize..6), rng.random_range(0usize..6));
                let restaurant = grid.node_at(r, c);
                let customer = grid.node_at(5 - r, 5 - c);
                // Skip degenerate orders whose restaurant equals the customer.
                let customer =
                    if customer == restaurant { grid.node_at((r + 1) % 6, c) } else { customer };
                PlannedOrder::pending(Order::new(
                    OrderId(i as u64),
                    restaurant,
                    customer,
                    t,
                    1,
                    foodmatch_roadnet::Duration::from_mins(6.0),
                ))
            })
            .collect();
        let start = grid.node_at(rng.random_range(0usize..6), rng.random_range(0usize..6));
        let anchored = plan_optimal_route(start, t, &orders, &engine).unwrap();
        assert!(anchored.plan.validate(&orders).is_ok(), "case {case}: invalid anchored plan");
        assert!(anchored.cost_secs >= -1e-6, "case {case}");

        let free = plan_optimal_route_free_start(t, &orders, &engine).unwrap();
        assert!(free.plan.validate(&orders).is_ok(), "case {case}: invalid free-start plan");
        // Removing the first mile can only help.
        assert!(
            free.cost_secs <= anchored.cost_secs + 1e-6,
            "case {case}: free-start plan {} costs more than anchored {}",
            free.cost_secs,
            anchored.cost_secs
        );
    }
}

/// Batching preserves every order exactly once, respects MAXO/MAXI, and its
/// final average cost decomposition is consistent (Theorem 2: the total
/// never drops below the sum of singleton costs, which is zero).
#[test]
fn batching_preserves_orders_and_capacity() {
    let (network, grid) = test_grid();
    let engine = ShortestPathEngine::cached(network);
    let t = TimePoint::from_hms(13, 0, 0);
    let config = DispatchConfig::default();
    let mut rng = StdRng::seed_from_u64(0xF00D_0005);
    for case in 0..CASES {
        let order_count = rng.random_range(2usize..7);
        let orders: Vec<Order> = (0..order_count)
            .map(|i| {
                let (r, c) = (rng.random_range(0usize..6), rng.random_range(0usize..6));
                let items = rng.random_range(1u32..4);
                let restaurant = grid.node_at(r, c);
                let mut customer = grid.node_at(5 - r, c);
                if customer == restaurant {
                    customer = grid.node_at(r, (c + 3) % 6);
                }
                Order::new(
                    OrderId(i as u64),
                    restaurant,
                    customer,
                    t,
                    items,
                    foodmatch_roadnet::Duration::from_mins(7.0),
                )
            })
            .collect();
        let outcome = batch_orders(&orders, &engine, t, &config);
        let mut seen: Vec<u64> = outcome
            .batches
            .iter()
            .flat_map(|b| b.orders.iter().map(|o| o.id.0))
            .chain(outcome.unplannable.iter().map(|o| o.id.0))
            .collect();
        seen.sort_unstable();
        let mut expected: Vec<u64> = orders.iter().map(|o| o.id.0).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected, "case {case}: orders lost or duplicated by batching");
        for batch in &outcome.batches {
            assert!(batch.len() <= config.max_orders_per_vehicle, "case {case}");
            assert!(batch.total_items() <= config.max_items_per_vehicle, "case {case}");
            assert!(batch.cost_secs() >= -1e-6, "case {case}: negative batch cost");
        }
        assert!(outcome.final_avg_cost_secs >= -1e-6, "case {case}");
    }
}

/// Enumerates all injective mappings of `0..k` into `indices`, calling
/// `visit` with each mapping.
fn permute(
    indices: &[usize],
    k: usize,
    current: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if current.len() == k {
        visit(current);
        return;
    }
    for &index in indices {
        if !current.contains(&index) {
            current.push(index);
            permute(indices, k, current, visit);
            current.pop();
        }
    }
}
