//! Property-based tests (proptest) for the core invariants the paper's
//! algorithms rely on.

use foodmatch_core::route::{plan_optimal_route, plan_optimal_route_free_start, PlannedOrder};
use foodmatch_core::{batch_orders, DispatchConfig, Order, OrderId};
use foodmatch_matching::{greedy, hungarian, CostMatrix};
use foodmatch_roadnet::generators::GridCityBuilder;
use foodmatch_roadnet::{
    angular_distance, dijkstra, CongestionProfile, GeoPoint, HourSlot, HubLabelIndex, NodeId,
    ShortestPathEngine, TimePoint,
};
use proptest::prelude::*;

fn test_grid() -> (foodmatch_roadnet::RoadNetwork, GridCityBuilder) {
    let builder = GridCityBuilder::new(6, 6)
        .congestion(CongestionProfile::metropolitan())
        .major_every(3);
    (builder.build(), builder)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hungarian matching is optimal: no permutation of columns achieves a
    /// lower total cost, and greedy never beats it.
    #[test]
    fn hungarian_is_optimal_and_beats_greedy(
        rows in 1usize..5,
        cols in 1usize..5,
        values in proptest::collection::vec(0.0f64..500.0, 25),
    ) {
        let matrix = CostMatrix::from_fn(rows, cols, |r, c| values[(r * 5 + c) % values.len()]);
        let optimal = hungarian::solve(&matrix);
        let greedy = greedy::solve(&matrix);
        prop_assert_eq!(optimal.matched_pairs(), rows.min(cols));
        prop_assert!(optimal.total_cost <= greedy.total_cost + 1e-9);
        prop_assert!(optimal.is_consistent());

        // Exhaustive check against every injection of rows into columns.
        let smaller = rows.min(cols);
        let mut best = f64::INFINITY;
        let indices: Vec<usize> = (0..rows.max(cols)).collect();
        permute(&indices, smaller, &mut Vec::new(), &mut |perm| {
            let cost: f64 = perm
                .iter()
                .enumerate()
                .map(|(i, &j)| if rows <= cols { matrix.get(i, j) } else { matrix.get(j, i) })
                .sum();
            if cost < best {
                best = cost;
            }
        });
        prop_assert!((optimal.total_cost - best).abs() < 1e-6,
            "hungarian {} vs exhaustive {}", optimal.total_cost, best);
    }

    /// Shortest-path travel times satisfy the triangle inequality and all
    /// engines (Dijkstra, cached, hub labels) agree.
    #[test]
    fn shortest_paths_satisfy_triangle_inequality(
        a in 0u32..36, b in 0u32..36, c in 0u32..36, hour in 0u32..24,
    ) {
        let (network, _) = test_grid();
        let t = TimePoint::from_hms(hour, 15, 0);
        let engine = ShortestPathEngine::dijkstra(network.clone());
        let labels = HubLabelIndex::build(&network, HourSlot::new(hour as u8));
        let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
        let ab = engine.travel_time(a, b, t).unwrap().as_secs_f64();
        let bc = engine.travel_time(b, c, t).unwrap().as_secs_f64();
        let ac = engine.travel_time(a, c, t).unwrap().as_secs_f64();
        prop_assert!(ac <= ab + bc + 1e-6, "triangle inequality violated: {ac} > {ab} + {bc}");
        let hl_ab = labels.travel_time(a, b).unwrap().as_secs_f64();
        prop_assert!((hl_ab - ab).abs() < 1e-6, "hub labels disagree with dijkstra");
        // Dijkstra path reconstruction agrees with the distance.
        let path = dijkstra::shortest_path(&network, a, b, t).unwrap();
        prop_assert!((path.travel_time.as_secs_f64() - ab).abs() < 1e-6);
    }

    /// Angular distance is always within [0, 1].
    #[test]
    fn angular_distance_is_bounded(
        lat1 in -60.0f64..60.0, lon1 in -170.0f64..170.0,
        lat2 in -60.0f64..60.0, lon2 in -170.0f64..170.0,
        lat3 in -60.0f64..60.0, lon3 in -170.0f64..170.0,
    ) {
        let d = angular_distance(
            GeoPoint::new(lat1, lon1),
            GeoPoint::new(lat2, lon2),
            GeoPoint::new(lat3, lon3),
        );
        prop_assert!((0.0..=1.0).contains(&d), "angular distance {d} out of range");
    }

    /// The optimal route plan always respects pickup-before-drop-off and its
    /// cost never beats the free-start plan for the same orders (Theorem 2's
    /// building block).
    #[test]
    fn route_plans_respect_precedence_and_free_start_is_cheaper(
        seed_positions in proptest::collection::vec((0usize..6, 0usize..6), 2..4),
        start_r in 0usize..6, start_c in 0usize..6,
    ) {
        let (network, grid) = test_grid();
        let engine = ShortestPathEngine::cached(network);
        let t = TimePoint::from_hms(13, 0, 0);
        let orders: Vec<PlannedOrder> = seed_positions
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| {
                let restaurant = grid.node_at(r, c);
                let customer = grid.node_at(5 - r, 5 - c);
                // Skip degenerate orders whose restaurant equals the customer.
                let customer = if customer == restaurant { grid.node_at((r + 1) % 6, c) } else { customer };
                PlannedOrder::pending(Order::new(
                    OrderId(i as u64),
                    restaurant,
                    customer,
                    t,
                    1,
                    foodmatch_roadnet::Duration::from_mins(6.0),
                ))
            })
            .collect();
        let anchored = plan_optimal_route(grid.node_at(start_r, start_c), t, &orders, &engine).unwrap();
        prop_assert!(anchored.plan.validate(&orders).is_ok(), "invalid anchored plan");
        prop_assert!(anchored.cost_secs >= -1e-6);

        let free = plan_optimal_route_free_start(t, &orders, &engine).unwrap();
        prop_assert!(free.plan.validate(&orders).is_ok(), "invalid free-start plan");
        // Removing the first mile can only help.
        prop_assert!(free.cost_secs <= anchored.cost_secs + 1e-6,
            "free-start plan {} costs more than anchored {}", free.cost_secs, anchored.cost_secs);
    }

    /// Batching preserves every order exactly once, respects MAXO/MAXI, and
    /// its final average cost decomposition is consistent (Theorem 2: the
    /// total never drops below the sum of singleton costs, which is zero).
    #[test]
    fn batching_preserves_orders_and_capacity(
        seed_positions in proptest::collection::vec((0usize..6, 0usize..6, 1u32..4), 2..7),
    ) {
        let (network, grid) = test_grid();
        let engine = ShortestPathEngine::cached(network);
        let t = TimePoint::from_hms(13, 0, 0);
        let config = DispatchConfig::default();
        let orders: Vec<Order> = seed_positions
            .iter()
            .enumerate()
            .map(|(i, &(r, c, items))| {
                let restaurant = grid.node_at(r, c);
                let mut customer = grid.node_at(5 - r, c);
                if customer == restaurant {
                    customer = grid.node_at(r, (c + 3) % 6);
                }
                Order::new(OrderId(i as u64), restaurant, customer, t, items, foodmatch_roadnet::Duration::from_mins(7.0))
            })
            .collect();
        let outcome = batch_orders(&orders, &engine, t, &config);
        let mut seen: Vec<u64> = outcome
            .batches
            .iter()
            .flat_map(|b| b.orders.iter().map(|o| o.id.0))
            .chain(outcome.unplannable.iter().map(|o| o.id.0))
            .collect();
        seen.sort_unstable();
        let mut expected: Vec<u64> = orders.iter().map(|o| o.id.0).collect();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected, "orders lost or duplicated by batching");
        for batch in &outcome.batches {
            prop_assert!(batch.len() <= config.max_orders_per_vehicle);
            prop_assert!(batch.total_items() <= config.max_items_per_vehicle);
            prop_assert!(batch.cost_secs() >= -1e-6, "negative batch cost");
        }
        prop_assert!(outcome.final_avg_cost_secs >= -1e-6);
    }
}

/// Enumerates all injective mappings of `0..k` into `indices`, calling
/// `visit` with each mapping.
fn permute(indices: &[usize], k: usize, current: &mut Vec<usize>, visit: &mut impl FnMut(&[usize])) {
    if current.len() == k {
        visit(current);
        return;
    }
    for &index in indices {
        if !current.contains(&index) {
            current.push(index);
            permute(indices, k, current, visit);
            current.pop();
        }
    }
}
