//! Shared helpers for the workspace-level integration tests.
//!
//! The integration tests exercise the whole stack — synthetic city
//! generation, the dispatch policies and the simulator — on small scenarios
//! that run in seconds.

use foodmatch_roadnet::TimePoint;
use foodmatch_workload::{CityId, Scenario, ScenarioOptions};

/// A small, deterministic GrubHub-sized scenario covering one lunch hour.
pub fn tiny_scenario(seed: u64) -> Scenario {
    Scenario::generate(
        CityId::GrubHub,
        ScenarioOptions {
            seed,
            start: TimePoint::from_hms(12, 0, 0),
            end: TimePoint::from_hms(13, 0, 0),
            vehicle_fraction: 1.0,
        },
    )
}

/// A City A lunch-peak scenario — bigger than [`tiny_scenario`] but still
/// fast enough for CI.
pub fn small_city_scenario(seed: u64) -> Scenario {
    Scenario::generate(
        CityId::A,
        ScenarioOptions {
            seed,
            start: TimePoint::from_hms(12, 0, 0),
            end: TimePoint::from_hms(13, 30, 0),
            vehicle_fraction: 1.0,
        },
    )
}
