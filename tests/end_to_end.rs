//! End-to-end integration tests: workload generation → dispatch → simulation
//! → metrics, for every policy the paper benchmarks.

use foodmatch_core::PolicyKind;
use integration_tests::{small_city_scenario, tiny_scenario};

#[test]
fn every_policy_completes_a_tiny_day() {
    let scenario = tiny_scenario(1);
    let total = scenario.orders.len();
    assert!(total > 0, "the tiny scenario must contain orders");
    let simulation = scenario.into_simulation();
    for kind in PolicyKind::ALL {
        let mut policy = kind.build();
        let report = simulation.run(policy.as_mut());
        assert_eq!(report.total_orders, total, "{}", report.policy);
        // Conservation: every order is delivered, rejected or (exceptionally)
        // left undelivered — never lost, never duplicated.
        assert_eq!(
            report.delivered.len() + report.rejected.len() + report.undelivered.len(),
            total,
            "{} lost orders",
            report.policy
        );
        for d in &report.delivered {
            assert!(d.delivered_at > d.placed_at, "{}: delivery before placement", report.policy);
            assert!(d.xdt.as_secs_f64() >= 0.0);
        }
        assert!(report.orders_per_km() >= 0.0);
        assert!(report.waiting_hours() >= 0.0);
    }
}

#[test]
fn foodmatch_serves_most_orders_on_a_small_city() {
    let scenario = small_city_scenario(3);
    let total = scenario.orders.len();
    let report = scenario.into_simulation().run(&mut foodmatch_core::FoodMatchPolicy::new());
    assert_eq!(report.total_orders, total);
    assert!(
        report.delivery_rate_pct() > 80.0,
        "FoodMatch should deliver most orders with the full fleet, got {:.1}% ({} of {})",
        report.delivery_rate_pct(),
        report.delivered.len(),
        total
    );
    assert!(report.undelivered.is_empty(), "orders stranded on vehicles: {:?}", report.undelivered);
}

#[test]
fn simulation_reports_are_reproducible() {
    let report_a =
        tiny_scenario(7).into_simulation().run(&mut foodmatch_core::FoodMatchPolicy::new());
    let report_b =
        tiny_scenario(7).into_simulation().run(&mut foodmatch_core::FoodMatchPolicy::new());
    assert_eq!(report_a.delivered.len(), report_b.delivered.len());
    assert_eq!(report_a.rejected.len(), report_b.rejected.len());
    assert!((report_a.total_xdt_hours() - report_b.total_xdt_hours()).abs() < 1e-9);
    assert!((report_a.total_km() - report_b.total_km()).abs() < 1e-9);
}

#[test]
fn different_seeds_generate_different_days() {
    let a = tiny_scenario(1);
    let b = tiny_scenario(2);
    let placed_a: f64 = a.orders.iter().map(|o| o.placed_at.as_secs_f64()).sum();
    let placed_b: f64 = b.orders.iter().map(|o| o.placed_at.as_secs_f64()).sum();
    assert_ne!(placed_a, placed_b, "seeds must change the workload");
}

#[test]
fn windows_overflow_flag_is_consistent_with_delta() {
    let scenario = tiny_scenario(4);
    let delta = scenario.default_config().accumulation_window.as_secs_f64();
    let report = scenario.into_simulation().run(&mut foodmatch_core::GreedyPolicy::new());
    for window in &report.windows {
        assert_eq!(window.overflown, window.compute_secs > delta);
    }
}
