//! Property tests for the telemetry histogram: quantile bracketing and
//! merge algebra, on seeded random distributions.
//!
//! The log-bucketed histogram trades exactness for fixed memory; what it
//! *guarantees* is that every nearest-rank quantile it reports comes with
//! a bucket `[lower, upper]` window containing the exact sorted-sample
//! percentile (the buckets are at most 12.5% wide, so the window is
//! tight). And cross-shard aggregation leans on `merge` being a proper
//! commutative monoid — any grouping of per-shard snapshots must yield
//! the same city-wide distribution.

use foodmatch_telemetry::{bucket_bounds, bucket_index, HistogramSnapshot, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Records `samples` into a fresh registry histogram and snapshots it.
fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let telemetry = Telemetry::new();
    let histogram = telemetry.histogram("h");
    for &sample in samples {
        histogram.record(sample);
    }
    telemetry.snapshot().histogram("h").expect("registered").clone()
}

/// A batch of samples from one of several shapes: uniform-in-octave
/// (log-uniform-ish), heavy-tailed, tightly clustered, and tiny exact
/// values — the regimes dispatch latencies actually produce.
fn random_samples(rng: &mut StdRng, shape: usize, len: usize) -> Vec<u64> {
    (0..len)
        .map(|_| match shape % 4 {
            0 => {
                let octave = rng.random_range(0u32..40);
                let base = 1u64 << octave;
                rng.random_range(base..=base.saturating_mul(2).max(base))
            }
            1 => {
                // Heavy tail: mostly small, occasionally enormous.
                if rng.random_bool(0.05) {
                    rng.random_range(1_000_000_000u64..=u64::MAX / 2)
                } else {
                    rng.random_range(0u64..50_000)
                }
            }
            2 => rng.random_range(9_900u64..10_100),
            _ => rng.random_range(0u64..16),
        })
        .collect()
}

#[test]
fn quantile_bounds_bracket_exact_percentiles_across_distributions() {
    let mut rng = StdRng::seed_from_u64(0x7e1e);
    for case in 0..32 {
        let len = rng.random_range(1usize..=600);
        let samples = random_samples(&mut rng, case, len);
        let snap = snapshot_of(&samples);
        assert_eq!(snap.count, samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            // Nearest-rank, the convention the bench harness percentile
            // uses: rank = ceil(q/100 * n), 1-based, clamped.
            let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let exact = sorted[rank.min(sorted.len()) - 1];
            let (lower, upper) = snap.quantile_bounds(q).expect("non-empty histogram");
            assert!(
                lower <= exact && exact <= upper,
                "case {case} q{q}: exact {exact} outside bucket [{lower}, {upper}]"
            );
            // The window must be the bucket the exact value falls in.
            let (expected_lower, expected_upper) = bucket_bounds(bucket_index(exact));
            assert_eq!((lower, upper), (expected_lower, expected_upper));
            // The point estimate lies inside the reported window (clamped
            // to the observed max).
            let point = snap.quantile(q).expect("non-empty histogram");
            assert!(lower.min(snap.max) <= point && point <= upper);
        }
    }
}

#[test]
fn merge_is_associative_and_order_independent_over_random_shards() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for case in 0..16 {
        // One "city day" of samples, split across a random number of
        // shards with random boundaries.
        let total = rng.random_range(10usize..400);
        let samples = random_samples(&mut rng, case, total);
        let shards = rng.random_range(2usize..=6);
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); shards];
        for &sample in &samples {
            parts[rng.random_range(0usize..shards)].push(sample);
        }
        let snaps: Vec<HistogramSnapshot> = parts.iter().map(|p| snapshot_of(p)).collect();

        // Left fold, right fold, and a shuffled fold must all equal the
        // unsharded distribution.
        let whole = snapshot_of(&samples);
        let left = snaps.iter().fold(HistogramSnapshot::empty(), |acc, s| acc.merge(s));
        let right = snaps.iter().rev().fold(HistogramSnapshot::empty(), |acc, s| s.merge(&acc));
        let mut indices: Vec<usize> = (0..shards).collect();
        // Fisher-Yates with the seeded rng keeps the test deterministic.
        for i in (1..indices.len()).rev() {
            indices.swap(i, rng.random_range(0usize..=i));
        }
        let shuffled =
            indices.iter().fold(HistogramSnapshot::empty(), |acc, &i| acc.merge(&snaps[i]));

        assert_eq!(left, whole, "case {case}: left fold differs from the unsharded histogram");
        assert_eq!(right, whole, "case {case}: right fold differs");
        assert_eq!(shuffled, whole, "case {case}: shuffled fold differs");

        // Pairwise associativity on the first three shards.
        if shards >= 3 {
            let ab_c = snaps[0].merge(&snaps[1]).merge(&snaps[2]);
            let a_bc = snaps[0].merge(&snaps[1].merge(&snaps[2]));
            assert_eq!(ab_c, a_bc, "case {case}: merge is not associative");
        }
        // The empty histogram is the identity.
        assert_eq!(whole.merge(&HistogramSnapshot::empty()), whole);
    }
}
