//! Golden equivalence for the sharded router.
//!
//! Two pins:
//!
//! * A [`DispatchRouter`] over a **single zone** covering the whole network
//!   is the bare [`DispatchService`], bit for bit, on a disruption-heavy
//!   lunch peak — same typed output stream, same report. Sharding is pure
//!   composition; one shard must add nothing.
//! * A **multi-zone** router over the metro workload produces bit-identical
//!   output streams and reports whether the lockstep fan-out runs on one
//!   thread or four. Concurrency is an implementation detail, never an
//!   outcome.
//!
//! As in `tests/service_equivalence.rs`, only wall-clock window fields
//! (`compute_secs` and the derived `overflown` flag) are normalised before
//! comparing — they measure the host machine, not the dispatch outcome.

use foodmatch_core::{DispatchConfig, PolicyKind};
use foodmatch_events::{DisruptionCause, DisruptionEvent, EventKind, TrafficDisruption};
use foodmatch_roadnet::Duration;
use foodmatch_sim::{
    DispatchOutput, DispatchRouter, RoutedOutput, SimulationReport, ZoneId, ZoneMap,
};
use foodmatch_workload::{DisruptionPreset, MetroOptions, MetroScenario};
use integration_tests::tiny_scenario;

/// Zeroes the wall-clock-dependent window fields of a report.
fn normalized(mut report: SimulationReport) -> SimulationReport {
    for window in &mut report.windows {
        window.compute_secs = 0.0;
        window.overflown = false;
    }
    report
}

/// Zeroes the wall-clock-dependent fields inside an output stream.
fn normalized_outputs(outputs: Vec<DispatchOutput>) -> Vec<DispatchOutput> {
    outputs
        .into_iter()
        .map(|output| match output {
            DispatchOutput::WindowClosed { mut stats } => {
                stats.compute_secs = 0.0;
                stats.overflown = false;
                DispatchOutput::WindowClosed { stats }
            }
            other => other,
        })
        .collect()
}

/// Drives a router one accumulation window at a time to completion.
fn drain_router(
    router: &mut DispatchRouter<Box<dyn foodmatch_core::DispatchPolicy>>,
) -> Vec<RoutedOutput> {
    let mut outputs = Vec::new();
    while !router.is_finished() {
        let tick = router.now() + router.config().accumulation_window;
        outputs.extend(router.advance_to(tick));
    }
    outputs
}

#[test]
fn single_zone_router_is_bit_identical_to_the_bare_service() {
    let scenario = tiny_scenario(5);
    let network = scenario.city.network.clone();
    let events = DisruptionPreset::IncidentHeavy.builder(5).build(&scenario);
    assert!(!events.is_empty(), "the disruption profile must actually disrupt");
    let sim = scenario.into_simulation().with_events(events);

    for kind in PolicyKind::ALL {
        // The bare service, driven window by window.
        let mut policy = kind.build();
        let mut service = sim.service(policy.as_mut());
        for order in &sim.orders {
            if order.placed_at >= sim.start && order.placed_at < sim.end {
                assert!(service.submit_order(*order).is_accepted());
            }
        }
        for &event in &sim.events {
            assert!(service.ingest_event(event).is_accepted());
        }
        let mut service_outputs = Vec::new();
        while !service.is_finished() {
            let tick = service.now() + service.config().accumulation_window;
            service_outputs.extend(service.advance_to(tick));
        }
        let service_report = service.report();

        // The same day through a one-zone router.
        let mut router = DispatchRouter::new(
            &network,
            ZoneMap::single(&network),
            sim.vehicle_starts.clone(),
            |_| kind.build(),
            sim.config.clone(),
            sim.start,
            sim.end,
            sim.drain_limit,
        );
        for order in &sim.orders {
            if order.placed_at >= sim.start && order.placed_at < sim.end {
                assert!(router.submit_order(*order).is_accepted());
            }
        }
        for &event in &sim.events {
            assert!(router.ingest_event(event).is_accepted());
        }
        let routed = drain_router(&mut router);
        let report = router.report();

        // Every output carries the only zone's tag; stripped, the stream is
        // the service's stream.
        assert!(routed.iter().all(|o| o.zone == ZoneId(0)));
        let stripped: Vec<DispatchOutput> = routed.into_iter().map(|o| o.output).collect();
        assert_eq!(
            normalized_outputs(stripped),
            normalized_outputs(service_outputs),
            "{kind:?}: one-zone router output stream must equal the bare service's"
        );
        assert_eq!(
            normalized(report.aggregate.clone()),
            normalized(service_report),
            "{kind:?}: one-zone router report must equal the bare service's"
        );
        // And the aggregate of one zone is that zone's report verbatim.
        assert_eq!(report.aggregate, report.zones[0].1);
    }
}

#[test]
fn multi_zone_router_is_thread_count_independent() {
    let mut options = MetroOptions::lunch_peak(9);
    options.orders = 140;
    options.vehicles = 112;
    let metro = MetroScenario::generate(options);

    // A mixed event day: city-wide rain, a zone-local incident, order churn
    // and fleet churn — every routing path of ingest_event.
    let noon = options.start;
    let events = vec![
        DisruptionEvent::new(
            noon + Duration::from_mins(10.0),
            EventKind::Traffic(TrafficDisruption::city_wide(
                DisruptionCause::Rain,
                1.4,
                noon + Duration::from_mins(40.0),
            )),
        ),
        DisruptionEvent::new(
            noon + Duration::from_mins(15.0),
            EventKind::Traffic(TrafficDisruption::localized(
                DisruptionCause::Incident,
                metro.orders[0].restaurant,
                2_000.0,
                3.0,
                noon + Duration::from_mins(50.0),
            )),
        ),
        DisruptionEvent::new(
            noon + Duration::from_mins(20.0),
            EventKind::OrderCancelled { order: metro.orders[3].id },
        ),
        DisruptionEvent::new(
            noon + Duration::from_mins(25.0),
            EventKind::VehicleOffShift { vehicle: metro.vehicle_starts[0].0 },
        ),
    ];

    let run = |threads: usize| -> (Vec<RoutedOutput>, Vec<(ZoneId, SimulationReport)>) {
        let config = DispatchConfig { num_threads: threads, ..metro.config() };
        let mut router = DispatchRouter::new(
            &metro.network,
            metro.zone_map(),
            metro.vehicle_starts.clone(),
            |_| PolicyKind::FoodMatch.build(),
            config,
            options.start,
            options.end,
            Duration::from_hours(2.0),
        );
        for order in &metro.orders {
            assert!(router.submit_order(*order).is_accepted());
        }
        for &event in &events {
            assert!(router.ingest_event(event).is_accepted());
        }
        let outputs = drain_router(&mut router);
        (outputs, router.report().zones)
    };

    let (serial_out, serial_zones) = run(1);
    let (parallel_out, parallel_zones) = run(4);

    assert!(
        serial_out.iter().any(|o| matches!(o.output, DispatchOutput::Delivered { .. })),
        "the metro day must deliver something"
    );
    let zones_seen: std::collections::HashSet<ZoneId> = serial_out.iter().map(|o| o.zone).collect();
    assert!(zones_seen.len() > 1, "a metro day must touch more than one zone");

    // The tagged output streams must agree element by element…
    let strip = |outs: Vec<RoutedOutput>| -> Vec<(ZoneId, DispatchOutput)> {
        outs.into_iter()
            .map(|o| match o.output {
                DispatchOutput::WindowClosed { mut stats } => {
                    stats.compute_secs = 0.0;
                    stats.overflown = false;
                    (o.zone, DispatchOutput::WindowClosed { stats })
                }
                other => (o.zone, other),
            })
            .collect()
    };
    assert_eq!(
        strip(serial_out),
        strip(parallel_out),
        "the merged output stream must not depend on the thread count"
    );

    // …and so must every zone's report.
    assert_eq!(serial_zones.len(), parallel_zones.len());
    for ((zone_a, report_a), (zone_b, report_b)) in serial_zones.into_iter().zip(parallel_zones) {
        assert_eq!(zone_a, zone_b);
        assert_eq!(
            normalized(report_a),
            normalized(report_b),
            "{zone_a}: per-zone reports must not depend on the thread count"
        );
    }
}
