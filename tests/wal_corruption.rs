//! Randomised corruption tests for the write-ahead log.
//!
//! The WAL's safety contract: reading a damaged log **never panics and
//! never returns silently wrong records**. Every outcome is one of
//!
//! * a clean prefix of the original records (possibly with a reported
//!   [`TornTail`]) when the damage looks like a crash mid-append — i.e.
//!   the file simply ends early;
//! * a hard, typed [`WalError`] for anything else (bad header, oversized
//!   length, checksum mismatch, malformed payload).
//!
//! As in `tests/invariants.rs`, each property runs as an explicit
//! seeded-RNG case loop (the offline build cannot vendor proptest), so
//! failures are deterministic and print the offending case.

use foodmatch_core::{Order, OrderId};
use foodmatch_events::{DisruptionCause, DisruptionEvent, EventKind, TrafficDisruption};
use foodmatch_roadnet::{Duration, NodeId, TimePoint};
use foodmatch_sim::wal::WAL_HEADER_LEN;
use foodmatch_sim::{read_wal_bytes, FlushPolicy, WalError, WalRecord, WriteAheadLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property.
const CASES: usize = 64;

/// A mixed, realistic record stream: orders, disruption events, advances.
fn sample_records(rng: &mut StdRng) -> Vec<WalRecord> {
    let start = TimePoint::from_hms(12, 0, 0);
    let n = rng.random_range(3usize..20);
    (0..n)
        .map(|i| {
            let at = start + Duration::from_mins(i as f64);
            match rng.random_range(0u8..3) {
                0 => WalRecord::SubmitOrder(Order::new(
                    OrderId(i as u64 + 1),
                    NodeId(rng.random_range(0u32..400)),
                    NodeId(rng.random_range(0u32..400)),
                    at,
                    rng.random_range(1u32..4),
                    Duration::from_mins(rng.random_range(3.0f64..15.0)),
                )),
                1 => WalRecord::IngestEvent(DisruptionEvent::new(
                    at,
                    EventKind::Traffic(TrafficDisruption::city_wide(
                        DisruptionCause::Rain,
                        rng.random_range(1.1f64..2.5),
                        at + Duration::from_mins(30.0),
                    )),
                )),
                _ => WalRecord::AdvanceTo(at),
            }
        })
        .collect()
}

/// Writes `records` through the real appender under `policy` and returns
/// the file bytes (the drop flushes any partial group).
fn valid_wal_bytes_with(records: &[WalRecord], tag: &str, policy: FlushPolicy) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!("fm-walcorrupt-{}-{tag}", std::process::id()));
    let mut wal = WriteAheadLog::create_with(&path, policy).expect("create wal");
    for record in records {
        wal.append(record).expect("append");
    }
    drop(wal);
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Writes `records` through the real appender and returns the file bytes.
fn valid_wal_bytes(records: &[WalRecord], tag: &str) -> Vec<u8> {
    valid_wal_bytes_with(records, tag, FlushPolicy::EveryRecord)
}

#[test]
fn random_truncation_yields_a_clean_prefix_or_a_typed_error() {
    let mut rng = StdRng::seed_from_u64(0xF00D_CA5E);
    for case in 0..CASES {
        let records = sample_records(&mut rng);
        let bytes = valid_wal_bytes(&records, "trunc");
        let cut = rng.random_range(0..=bytes.len());
        let truncated = &bytes[..cut];

        match read_wal_bytes(truncated) {
            Ok(outcome) => {
                // Whatever survives must be a verbatim prefix of what was
                // written — never a reordered, skipped or invented record.
                assert!(
                    outcome.records.len() <= records.len(),
                    "case {case}: more records than were written"
                );
                assert_eq!(
                    outcome.records[..],
                    records[..outcome.records.len()],
                    "case {case}: surviving records must be a verbatim prefix"
                );
                if outcome.records.len() < records.len() {
                    assert!(
                        outcome.torn_tail.is_some()
                            || cut == full_frame_end(&bytes, outcome.records.len()),
                        "case {case}: dropped records without reporting a tear"
                    );
                }
            }
            // A cut inside the file header is a BadHeader, never a panic.
            Err(_) => assert!(
                cut < WAL_HEADER_LEN,
                "case {case}: a clean truncation at {cut} must be tolerated"
            ),
        }
    }
}

/// Byte offset where the frame of record `index` ends (i.e. a truncation
/// exactly here leaves `index` whole records and no partial bytes).
fn full_frame_end(bytes: &[u8], index: usize) -> usize {
    let mut offset = WAL_HEADER_LEN;
    for _ in 0..index {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 8 + len;
    }
    offset
}

#[test]
fn random_bit_flips_never_panic_and_never_fabricate_records() {
    let mut rng = StdRng::seed_from_u64(0xF00D_B175);
    for case in 0..CASES {
        let records = sample_records(&mut rng);
        let mut bytes = valid_wal_bytes(&records, "flip");
        // Flip 1–4 random bits anywhere in the file.
        for _ in 0..rng.random_range(1usize..5) {
            let byte = rng.random_range(0..bytes.len());
            let bit = rng.random_range(0u8..8);
            bytes[byte] ^= 1 << bit;
        }

        match read_wal_bytes(&bytes) {
            // The flips may cancel out or land in a length field in a way
            // that still parses as a shorter-but-intact log; any records
            // returned must still be a checksummed verbatim prefix.
            Ok(outcome) => {
                let intact = outcome.records.len().min(records.len());
                assert_eq!(
                    outcome.records[..intact],
                    records[..intact],
                    "case {case}: surviving records must be a verbatim prefix"
                );
            }
            // Otherwise: a typed error. Reaching this arm at all (rather
            // than a panic or an abort) is the property.
            Err(error) => {
                let _ = format!("{error}"); // Display must not panic either.
            }
        }
    }
}

#[test]
fn flipping_one_payload_bit_of_a_mid_log_record_is_always_a_checksum_error() {
    let mut rng = StdRng::seed_from_u64(0xF00D_C32C);
    for case in 0..CASES {
        let records = sample_records(&mut rng);
        let bytes = valid_wal_bytes(&records, "crc");
        // Pick a record that is not the last one, so the damage can never
        // be mistaken for a torn tail.
        let victim = rng.random_range(0..records.len().saturating_sub(1).max(1));
        let mut offset = WAL_HEADER_LEN;
        for _ in 0..victim {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            offset += 8 + len;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let mut damaged = bytes.clone();
        let target = offset + 8 + rng.random_range(0..len);
        damaged[target] ^= 1 << rng.random_range(0u8..8);

        match read_wal_bytes(&damaged) {
            Err(foodmatch_sim::WalError::ChecksumMismatch { index, .. }) => {
                assert_eq!(index, victim as u64, "case {case}: blames the damaged record");
            }
            other => panic!(
                "case {case}: payload damage in record {victim} must be a checksum mismatch, got {other:?}"
            ),
        }
    }
}

#[test]
fn truncating_a_group_committed_log_still_yields_a_clean_prefix() {
    // The group-commit property: a crash midway through a multi-record
    // flush leaves some prefix of the group's bytes. Whatever parses back
    // must be a verbatim prefix of the appended stream — a torn *group*
    // tail loses trailing records but never reorders, skips or invents.
    let mut rng = StdRng::seed_from_u64(0xF00D_6209);
    for case in 0..CASES {
        let records = sample_records(&mut rng);
        let policy = match rng.random_range(0u8..3) {
            0 => FlushPolicy::EveryN(rng.random_range(2u32..8)),
            1 => FlushPolicy::Window,
            _ => FlushPolicy::Timed(std::time::Duration::from_secs(3600)),
        };
        let bytes = valid_wal_bytes_with(&records, "group", policy);
        // The drop flushed everything: the policy changes *when* fsyncs
        // happen, never what ends up in the file.
        assert_eq!(
            read_wal_bytes(&bytes).expect("clean group log").records,
            records,
            "case {case}: group-committed bytes must decode to the full stream ({policy:?})"
        );
        let cut = rng.random_range(WAL_HEADER_LEN..=bytes.len());
        let outcome = read_wal_bytes(&bytes[..cut]).expect("truncation is never corruption");
        assert_eq!(
            outcome.records[..],
            records[..outcome.records.len()],
            "case {case}: surviving records must be a verbatim prefix ({policy:?})"
        );
        if outcome.records.len() < records.len() {
            assert!(
                outcome.torn_tail.is_some() || cut == full_frame_end(&bytes, outcome.records.len()),
                "case {case}: dropped records without reporting a tear ({policy:?})"
            );
        }
    }
}

#[test]
fn discarded_groups_never_reach_disk_and_acked_prefixes_always_do() {
    // Simulated power cuts drop the in-memory group: the file must hold
    // exactly the acked prefix, no torn bytes, no partial group.
    let mut rng = StdRng::seed_from_u64(0xF00D_D15C);
    for case in 0..CASES {
        let records = sample_records(&mut rng);
        let path = std::env::temp_dir()
            .join(format!("fm-walcorrupt-{}-discard-{case}", std::process::id()));
        let n = rng.random_range(2u32..6);
        let mut wal = WriteAheadLog::create_with(&path, FlushPolicy::EveryN(n)).expect("create");
        for record in &records {
            wal.append(record).expect("append");
        }
        let acked = wal.acked_seq() as usize;
        let dropped = wal.discard_unflushed();
        assert_eq!(dropped as usize, records.len() - acked, "case {case}: drop count");
        drop(wal);
        let outcome = read_wal_bytes(&std::fs::read(&path).expect("read")).expect("clean log");
        assert_eq!(
            outcome.records[..],
            records[..acked],
            "case {case}: exactly the acked prefix survives a power cut"
        );
        assert_eq!(outcome.torn_tail, None, "case {case}: no partial bytes");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn compaction_round_trips_and_guards_replay_below_the_anchor() {
    let mut rng = StdRng::seed_from_u64(0xF00D_C04A);
    for case in 0..CASES {
        let records = sample_records(&mut rng);
        let path = std::env::temp_dir()
            .join(format!("fm-walcorrupt-{}-compact-{case}", std::process::id()));
        let mut wal = WriteAheadLog::create(&path).expect("create");
        for record in &records {
            wal.append(record).expect("append");
        }
        let anchor = rng.random_range(0..=records.len() as u64);
        wal.compact_below(anchor).expect("compact");
        drop(wal);

        // Reopening a compacted log is clean: global numbering preserved,
        // suffix verbatim, replay below the anchor a typed error (the
        // "checkpoint is missing" recovery mistake), not a panic.
        let (reopened, outcome) = WriteAheadLog::open(&path).expect("reopen compacted log");
        assert_eq!(reopened.seq(), records.len() as u64, "case {case}: global seq");
        assert_eq!(outcome.base_seq, anchor, "case {case}: base seq is the anchor");
        assert_eq!(
            outcome.records[..],
            records[anchor as usize..],
            "case {case}: the surviving suffix is verbatim"
        );
        assert_eq!(
            outcome.suffix_from(anchor).expect("anchored replay"),
            &records[anchor as usize..],
            "case {case}: replay from the anchor sees the whole suffix"
        );
        if anchor > 0 {
            assert!(
                matches!(
                    outcome.suffix_from(rng.random_range(0..anchor)),
                    Err(WalError::CompactedPast { .. })
                ),
                "case {case}: replay below the anchor must be CompactedPast"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
