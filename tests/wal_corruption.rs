//! Randomised corruption tests for the write-ahead log.
//!
//! The WAL's safety contract: reading a damaged log **never panics and
//! never returns silently wrong records**. Every outcome is one of
//!
//! * a clean prefix of the original records (possibly with a reported
//!   [`TornTail`]) when the damage looks like a crash mid-append — i.e.
//!   the file simply ends early;
//! * a hard, typed [`WalError`] for anything else (bad header, oversized
//!   length, checksum mismatch, malformed payload).
//!
//! As in `tests/invariants.rs`, each property runs as an explicit
//! seeded-RNG case loop (the offline build cannot vendor proptest), so
//! failures are deterministic and print the offending case.

use foodmatch_core::{Order, OrderId};
use foodmatch_events::{DisruptionCause, DisruptionEvent, EventKind, TrafficDisruption};
use foodmatch_roadnet::{Duration, NodeId, TimePoint};
use foodmatch_sim::{read_wal_bytes, WalRecord, WriteAheadLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property.
const CASES: usize = 64;

/// A mixed, realistic record stream: orders, disruption events, advances.
fn sample_records(rng: &mut StdRng) -> Vec<WalRecord> {
    let start = TimePoint::from_hms(12, 0, 0);
    let n = rng.random_range(3usize..20);
    (0..n)
        .map(|i| {
            let at = start + Duration::from_mins(i as f64);
            match rng.random_range(0u8..3) {
                0 => WalRecord::SubmitOrder(Order::new(
                    OrderId(i as u64 + 1),
                    NodeId(rng.random_range(0u32..400)),
                    NodeId(rng.random_range(0u32..400)),
                    at,
                    rng.random_range(1u32..4),
                    Duration::from_mins(rng.random_range(3.0f64..15.0)),
                )),
                1 => WalRecord::IngestEvent(DisruptionEvent::new(
                    at,
                    EventKind::Traffic(TrafficDisruption::city_wide(
                        DisruptionCause::Rain,
                        rng.random_range(1.1f64..2.5),
                        at + Duration::from_mins(30.0),
                    )),
                )),
                _ => WalRecord::AdvanceTo(at),
            }
        })
        .collect()
}

/// Writes `records` through the real appender and returns the file bytes.
fn valid_wal_bytes(records: &[WalRecord], tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!("fm-walcorrupt-{}-{tag}", std::process::id()));
    let mut wal = WriteAheadLog::create(&path).expect("create wal");
    for record in records {
        wal.append(record).expect("append");
    }
    drop(wal);
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn random_truncation_yields_a_clean_prefix_or_a_typed_error() {
    let mut rng = StdRng::seed_from_u64(0xF00D_CA5E);
    for case in 0..CASES {
        let records = sample_records(&mut rng);
        let bytes = valid_wal_bytes(&records, "trunc");
        let cut = rng.random_range(0..=bytes.len());
        let truncated = &bytes[..cut];

        match read_wal_bytes(truncated) {
            Ok(outcome) => {
                // Whatever survives must be a verbatim prefix of what was
                // written — never a reordered, skipped or invented record.
                assert!(
                    outcome.records.len() <= records.len(),
                    "case {case}: more records than were written"
                );
                assert_eq!(
                    outcome.records[..],
                    records[..outcome.records.len()],
                    "case {case}: surviving records must be a verbatim prefix"
                );
                if outcome.records.len() < records.len() {
                    assert!(
                        outcome.torn_tail.is_some()
                            || cut == full_frame_end(&bytes, outcome.records.len()),
                        "case {case}: dropped records without reporting a tear"
                    );
                }
            }
            // A cut inside the 8-byte header is a BadHeader, never a panic.
            Err(_) => {
                assert!(cut < 8, "case {case}: a clean truncation at {cut} must be tolerated")
            }
        }
    }
}

/// Byte offset where the frame of record `index` ends (i.e. a truncation
/// exactly here leaves `index` whole records and no partial bytes).
fn full_frame_end(bytes: &[u8], index: usize) -> usize {
    let mut offset = 8; // magic
    for _ in 0..index {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 8 + len;
    }
    offset
}

#[test]
fn random_bit_flips_never_panic_and_never_fabricate_records() {
    let mut rng = StdRng::seed_from_u64(0xF00D_B175);
    for case in 0..CASES {
        let records = sample_records(&mut rng);
        let mut bytes = valid_wal_bytes(&records, "flip");
        // Flip 1–4 random bits anywhere in the file.
        for _ in 0..rng.random_range(1usize..5) {
            let byte = rng.random_range(0..bytes.len());
            let bit = rng.random_range(0u8..8);
            bytes[byte] ^= 1 << bit;
        }

        match read_wal_bytes(&bytes) {
            // The flips may cancel out or land in a length field in a way
            // that still parses as a shorter-but-intact log; any records
            // returned must still be a checksummed verbatim prefix.
            Ok(outcome) => {
                let intact = outcome.records.len().min(records.len());
                assert_eq!(
                    outcome.records[..intact],
                    records[..intact],
                    "case {case}: surviving records must be a verbatim prefix"
                );
            }
            // Otherwise: a typed error. Reaching this arm at all (rather
            // than a panic or an abort) is the property.
            Err(error) => {
                let _ = format!("{error}"); // Display must not panic either.
            }
        }
    }
}

#[test]
fn flipping_one_payload_bit_of_a_mid_log_record_is_always_a_checksum_error() {
    let mut rng = StdRng::seed_from_u64(0xF00D_C32C);
    for case in 0..CASES {
        let records = sample_records(&mut rng);
        let bytes = valid_wal_bytes(&records, "crc");
        // Pick a record that is not the last one, so the damage can never
        // be mistaken for a torn tail.
        let victim = rng.random_range(0..records.len().saturating_sub(1).max(1));
        let mut offset = 8usize;
        for _ in 0..victim {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            offset += 8 + len;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let mut damaged = bytes.clone();
        let target = offset + 8 + rng.random_range(0..len);
        damaged[target] ^= 1 << rng.random_range(0u8..8);

        match read_wal_bytes(&damaged) {
            Err(foodmatch_sim::WalError::ChecksumMismatch { index, .. }) => {
                assert_eq!(index, victim as u64, "case {case}: blames the damaged record");
            }
            other => panic!(
                "case {case}: payload damage in record {victim} must be a checksum mismatch, got {other:?}"
            ),
        }
    }
}
