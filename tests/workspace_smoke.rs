//! Workspace-level smoke tests: the repro harness enumerates every
//! experiment, and scenario generation is deterministic under a fixed seed.

use foodmatch_bench::experiments;
use integration_tests::tiny_scenario;

/// Every figure/table of the paper's evaluation must stay registered, so the
/// `repro` binary (and the CI bench smoke job) can never silently lose one.
/// The seven families of the paper's evaluation — table2, fig4a and the
/// fig6–fig9 sweeps — are split into 13 registered experiments.
#[test]
fn repro_list_enumerates_all_experiments() {
    let names: Vec<&str> = experiments::ALL.iter().map(|e| e.name).collect();
    for expected in experiments::EXPECTED_NAMES {
        assert!(names.contains(&expected), "experiment {expected} missing from {names:?}");
    }
    assert_eq!(
        names.len(),
        experiments::EXPECTED_NAMES.len(),
        "unexpected experiment registry size: {names:?}"
    );
    for experiment in experiments::ALL {
        assert!(
            experiments::find(experiment.name).is_some(),
            "find() cannot resolve {}",
            experiment.name
        );
        assert!(!experiment.description.is_empty());
    }
}

/// One full accumulation window of the tiny scenario is deterministic: the
/// same seed yields byte-identical orders and fleet, and a different seed a
/// different workload.
#[test]
fn tiny_scenario_runs_one_window_deterministically() {
    let a = tiny_scenario(42);
    let b = tiny_scenario(42);
    assert_eq!(a.orders, b.orders);
    assert_eq!(a.vehicle_starts, b.vehicle_starts);
    assert!(!a.orders.is_empty(), "tiny scenario generated no orders");

    let other = tiny_scenario(43);
    assert_ne!(a.orders, other.orders, "different seeds must generate different workloads");

    // Run the simulation over exactly one accumulation window and check both
    // runs agree on every reported metric.
    let config = a.default_config();
    let window = config.accumulation_window;
    let run = |scenario: foodmatch_workload::Scenario| {
        let start = scenario.options.start;
        let mut truncated = scenario;
        truncated.options.end = start + window;
        truncated.orders.retain(|o| o.placed_at < start + window);
        truncated.into_simulation().run(&mut foodmatch_core::FoodMatchPolicy::new())
    };
    let first = run(tiny_scenario(42));
    let second = run(tiny_scenario(42));
    assert_eq!(first.total_orders, second.total_orders);
    assert_eq!(first.delivered.len(), second.delivered.len());
    assert_eq!(first.rejected.len(), second.rejected.len());
}
