//! Golden equivalence: the batch driver `Simulation::run` and external
//! incremental stepping of `DispatchService` are the same dispatcher.
//!
//! The acceptance check of the online-API redesign: for all four policies,
//! on a disruption-heavy lunch-peak scenario, a batch replay and a
//! window-at-a-time incremental drive (with mid-run `snapshot()` and
//! `report()` probes) must produce bit-identical `SimulationReport`s —
//! every delivery timestamp, XDT, rejection, cancellation, driven meter and
//! window statistic equal. Only the wall-clock fields (`compute_secs` and
//! the `overflown` flag derived from it) are normalised before comparing:
//! they measure the host machine, not the dispatch outcome.

use foodmatch_core::PolicyKind;
use foodmatch_roadnet::Duration;
use foodmatch_sim::{DispatchOutput, Simulation, SimulationReport};
use foodmatch_workload::{DisruptionPreset, OrderSource, ReplayOrderSource};
use integration_tests::tiny_scenario;

/// Zeroes the wall-clock-dependent window fields so reports can be compared
/// bit for bit on the dispatch outcome.
fn normalized(mut report: SimulationReport) -> SimulationReport {
    for window in &mut report.windows {
        window.compute_secs = 0.0;
        window.overflown = false;
    }
    report
}

/// The disruption-heavy lunch-peak scenario of the acceptance criterion.
fn disrupted_simulation(seed: u64) -> Simulation {
    let scenario = tiny_scenario(seed);
    let events = DisruptionPreset::IncidentHeavy.builder(seed).build(&scenario);
    assert!(!events.is_empty(), "the disruption profile must actually disrupt");
    scenario.into_simulation().with_events(events)
}

/// Drives `sim` through a `DispatchService` incrementally: everything is
/// submitted up front (the batch-equivalent ingest pattern — SDT baselines
/// are evaluated on the calm network, exactly as `run` does), then the
/// clock advances one accumulation window per call, probing `snapshot()`
/// and `report()` along the way to prove mid-run observation is free.
fn run_incrementally(sim: &Simulation, policy: PolicyKind) -> SimulationReport {
    let mut policy = policy.build();
    let mut service = sim.service(policy.as_mut());
    for order in &sim.orders {
        if order.placed_at >= sim.start && order.placed_at < sim.end {
            assert!(service.submit_order(*order).is_accepted());
        }
    }
    for &event in &sim.events {
        assert!(service.ingest_event(event).is_accepted());
    }

    let mut probe_counter = 0usize;
    let mut outputs: Vec<DispatchOutput> = Vec::new();
    while !service.is_finished() {
        let tick = service.now() + service.config().accumulation_window;
        outputs.extend(service.advance_to(tick));
        // Mid-run observation must not perturb the run.
        probe_counter += 1;
        if probe_counter % 3 == 0 {
            let snap = service.snapshot();
            let partial = service.report();
            assert_eq!(snap.delivered, partial.delivered.len());
            assert_eq!(snap.cancelled, partial.cancelled.len());
            assert_eq!(snap.rejected, partial.rejected.len());
            assert!(snap.now <= service.drain_deadline());
        }
    }
    let report = service.report();

    // The typed output stream is the report, event by event.
    let delivered_out =
        outputs.iter().filter(|o| matches!(o, DispatchOutput::Delivered { .. })).count();
    let rejected_out =
        outputs.iter().filter(|o| matches!(o, DispatchOutput::Rejected { .. })).count();
    let cancelled_out =
        outputs.iter().filter(|o| matches!(o, DispatchOutput::Cancelled { .. })).count();
    let windows_out =
        outputs.iter().filter(|o| matches!(o, DispatchOutput::WindowClosed { .. })).count();
    assert_eq!(delivered_out, report.delivered.len());
    assert_eq!(rejected_out, report.rejected.len());
    assert_eq!(cancelled_out, report.cancelled.len());
    assert_eq!(windows_out, report.windows.len());

    report
}

#[test]
fn batch_and_incremental_stepping_are_bit_identical_for_all_policies() {
    let sim = disrupted_simulation(5);
    for kind in PolicyKind::ALL {
        let mut batch_policy = kind.build();
        let batch = sim.run(batch_policy.as_mut());
        let incremental = run_incrementally(&sim, kind);

        assert!(!batch.delivered.is_empty(), "{kind:?}: scenario must deliver something");
        assert!(
            batch.windows.iter().any(|w| w.disrupted),
            "{kind:?}: the disruption profile must hit dispatch windows"
        );
        assert_eq!(
            normalized(batch),
            normalized(incremental),
            "{kind:?}: batch run() and incremental advance_to must agree bit for bit"
        );
    }
}

#[test]
fn coarse_and_fine_advance_grains_agree() {
    // advance_to is window-quantised: one jump to the drain deadline and
    // 1-window hops must be the same run.
    let sim = disrupted_simulation(7);
    let kind = PolicyKind::FoodMatch;
    let fine = run_incrementally(&sim, kind);

    let mut policy = kind.build();
    let mut service = sim.service(policy.as_mut());
    for order in &sim.orders {
        let _ = service.submit_order(*order);
    }
    for &event in &sim.events {
        let _ = service.ingest_event(event);
    }
    let coarse = service.run_to_completion();
    assert_eq!(normalized(coarse), normalized(fine));
}

#[test]
fn streaming_submission_matches_batch_on_a_calm_day() {
    // With no traffic overlay in play, orders may be submitted just in time
    // (streamed from an OrderSource tick by tick) and the run is still bit
    // identical to the batch replay: SDT baselines only depend on ingest
    // time through the overlay, and there is none on a calm day.
    let scenario = tiny_scenario(11);
    let sim = scenario.into_simulation();
    for kind in PolicyKind::ALL {
        let mut batch_policy = kind.build();
        let batch = sim.run(batch_policy.as_mut());

        let mut policy = kind.build();
        let mut service = sim.service(policy.as_mut());
        let mut source = ReplayOrderSource::new(sim.orders.clone());
        while !service.is_finished() {
            let tick = service.now() + service.config().accumulation_window;
            for order in source.poll(tick) {
                let _ = service.submit_order(order);
            }
            let _ = service.advance_to(tick);
        }
        assert_eq!(
            normalized(batch),
            normalized(service.report()),
            "{kind:?}: just-in-time streaming must match the batch replay on a calm day"
        );
    }
}

#[test]
fn rerunning_the_batch_driver_is_deterministic_after_service_use() {
    // The re-runnability contract of Simulation::run: a service-driven run
    // in between does not leak state (overlay, caches-as-answers) into
    // subsequent batch runs on the same shared engine.
    let sim = disrupted_simulation(3);
    let mut a_policy = PolicyKind::FoodMatch.build();
    let a = sim.run(a_policy.as_mut());
    let _ = run_incrementally(&sim, PolicyKind::Greedy);
    assert!(!sim.engine.has_overlay(), "the service hands the engine back clean");
    let mut b_policy = PolicyKind::FoodMatch.build();
    let b = sim.run(b_policy.as_mut());
    assert_eq!(normalized(a), normalized(b));

    // A shorter drain limit is honoured by the service the driver builds.
    let mut short = disrupted_simulation(3);
    short.drain_limit = Duration::from_mins(6.0);
    let mut c_policy = PolicyKind::FoodMatch.build();
    let c = short.run(c_policy.as_mut());
    assert_eq!(
        c.delivered.len() + c.rejected.len() + c.cancelled.len() + c.undelivered.len(),
        c.total_orders,
        "every order is accounted even when the drain is cut short"
    );
}
